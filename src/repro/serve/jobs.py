"""The service's job model: requests, lifecycle states, journal replay.

A :class:`JobRequest` is the complete, JSON-serializable description of
one optimization job — circuit, technology deck, constraints, search
knobs. It is deliberately *value-like*: two requests with equal fields
produce equal fingerprints (:func:`request_fingerprint`), which is what
makes the result cache content-addressed and the crash-recovery resume
exact.

A :class:`Job` is one accepted request moving through the lifecycle
state machine::

    QUEUED ──▶ RUNNING ──▶ DONE        (clean result)
      │           │  ├───▶ DEGRADED    (fallback result, labels intact)
      │           │  ├───▶ FAILED      (infeasible / exhausted fallback)
      │           │  ├───▶ CANCELLED   (cooperative cancel honoured)
      │           │  └───▶ QUARANTINED (poison job: crashed every retry)
      │           └───▶ QUEUED         (daemon died mid-run; re-enqueued
      └───▶ CANCELLED                   on recovery, resumes checkpoint)

Transitions are validated by :func:`transition` and journaled before
they take effect, so :func:`replay` can rebuild the exact queue state
from the write-ahead journal after a SIGKILL.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import JobStateError, OptimizationError

LOGGER = logging.getLogger("repro.serve")

# -- lifecycle states ------------------------------------------------------

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
DEGRADED = "DEGRADED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
QUARANTINED = "QUARANTINED"

#: Every lifecycle state, in diagram order.
JOB_STATES = (QUEUED, RUNNING, DONE, DEGRADED, FAILED, CANCELLED,
              QUARANTINED)

#: States a job can end in; a recovered daemon drives every job here.
TERMINAL_STATES = frozenset({DONE, DEGRADED, FAILED, CANCELLED,
                             QUARANTINED})

#: Legal transitions (RUNNING → QUEUED is the crash-recovery re-enqueue).
_TRANSITIONS: Mapping[str, frozenset] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, DEGRADED, FAILED, CANCELLED, QUARANTINED,
                        QUEUED}),
}


# -- requests --------------------------------------------------------------

#: JSON keys accepted by :meth:`JobRequest.from_dict` (the wire schema).
_REQUEST_FIELDS = ("circuit", "deck", "frequency_mhz", "activity",
                   "probability", "n_vth", "strategy", "search_budget",
                   "seed", "engine", "width_method", "grid_vdd", "grid_vth",
                   "refine_iters", "refine_rounds", "m_steps", "fallback",
                   "priority", "deadline_s", "robust", "yield_target",
                   "sigma_within", "sigma_die", "robust_samples",
                   "robust_cull_samples", "robust_seed", "robust_margin_z")


@dataclass(frozen=True)
class JobRequest:
    """One optimization request, as submitted over the wire."""

    #: Benchmark circuit name (see ``repro.netlist.benchmarks``).
    circuit: str
    #: Built-in technology deck name.
    deck: str = "generic-0.25um"
    #: Required clock frequency (MHz).
    frequency_mhz: float = 300.0
    #: Uniform input transition density.
    activity: float = 0.1
    #: Uniform input signal probability.
    probability: float = 0.5
    #: Distinct threshold voltages (>1 routes to the multi-Vth solver).
    n_vth: int = 1
    #: Procedure 2 search strategy ("grid", "random", "surrogate",
    #: "hyperband", or "paper").
    strategy: str = "grid"
    #: Adaptive strategies: sampling-phase evaluation budget (None =
    #: the strategy's default).
    search_budget: Optional[int] = None
    #: Adaptive strategies: proposal RNG seed. Part of the result-cache
    #: key — a cached seed-0 run never satisfies a seed-1 request.
    seed: int = 0
    #: Evaluation engine request ("auto", "scalar", "fast", ...).
    engine: str = "auto"
    #: Width solver ("closed_form" or "bisect").
    width_method: str = "closed_form"
    grid_vdd: int = 15
    grid_vth: int = 13
    refine_iters: int = 18
    refine_rounds: int = 2
    m_steps: int = 12
    #: Solve through the declared fallback chain instead of failing.
    fallback: bool = False
    #: Admission priority (higher runs first; ties in submission order).
    priority: int = 0
    #: Per-job wall-clock budget in seconds (None = unbounded).
    deadline_s: Optional[float] = None
    #: Robust risk measure ("mean"/"p95"/"cvar"); None = nominal job.
    #: Part of the result-cache key via the search fingerprint — a
    #: cached nominal result never satisfies a robust request.
    robust: Optional[str] = None
    yield_target: float = 0.95
    sigma_within: float = 0.010
    sigma_die: float = 0.015
    robust_samples: int = 40
    robust_cull_samples: int = 8
    robust_seed: int = 0
    robust_margin_z: float = 1.0

    def __post_init__(self) -> None:
        if not self.circuit:
            raise OptimizationError("job request needs a circuit name")
        if self.frequency_mhz <= 0.0:
            raise OptimizationError(
                f"frequency_mhz must be > 0, got {self.frequency_mhz}")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise OptimizationError(
                f"deadline_s must be > 0, got {self.deadline_s}")
        if self.n_vth < 1:
            raise OptimizationError(f"n_vth must be >= 1, got {self.n_vth}")
        if self.search_budget is not None and self.search_budget < 1:
            raise OptimizationError(
                f"search_budget must be >= 1, got {self.search_budget}")
        if self.robust is not None:
            if self.n_vth > 1:
                raise OptimizationError(
                    "robust jobs support a single Vth (n_vth=1); the "
                    "multi-Vth solver has no statistical objective yet")
            # Statistical inputs are validated here — at admission —
            # so a bad yield target is an {"status": "invalid"}
            # response, never a deep worker crash.
            robust_config_for(self)

    def to_dict(self) -> Dict[str, object]:
        """The wire/journal form of the request (plain JSON types)."""
        return {name: getattr(self, name) for name in _REQUEST_FIELDS}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobRequest":
        """Parse a wire/journal payload, rejecting unknown keys.

        Unknown keys are an error, not a silent drop — a client typo
        like ``"prioritiy"`` must fail loudly instead of producing a
        different job than the client believes it submitted.
        """
        unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
        if unknown:
            raise OptimizationError(
                f"unknown job request field(s): {', '.join(unknown)}")
        if "circuit" not in payload:
            raise OptimizationError("job request needs a circuit name")
        return cls(**dict(payload))


# -- problem / settings / fingerprints -------------------------------------


@lru_cache(maxsize=64)
def _cached_problem(circuit: str, deck_name: str, frequency_hz: float,
                    activity: float, probability: float, n_vth: int):
    from repro.activity.profiles import uniform_profile
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.optimize.problem import OptimizationProblem
    from repro.technology.library import deck

    technology = deck(deck_name)
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=probability,
                              density=activity)
    return OptimizationProblem.build(technology, network, profile,
                                     frequency=frequency_hz, n_vth=n_vth)


def problem_for(request: JobRequest):
    """The :class:`~repro.optimize.problem.OptimizationProblem` of a job."""
    from repro.units import MHZ

    return _cached_problem(request.circuit, request.deck,
                           request.frequency_mhz * MHZ, request.activity,
                           request.probability, request.n_vth)


def robust_config_for(request: JobRequest):
    """The :class:`~repro.robust.RobustConfig` of a robust request.

    Raises the config's own labeled
    :class:`~repro.errors.OptimizationError` on bad statistical inputs
    (unknown measure, yield target outside (0, 1), negative sigmas,
    too few samples); ``None`` for nominal requests.
    """
    if request.robust is None:
        return None
    from repro.robust import RobustConfig

    return RobustConfig(measure=request.robust,
                        yield_target=request.yield_target,
                        sigma_within=request.sigma_within,
                        sigma_die=request.sigma_die,
                        samples=request.robust_samples,
                        cull_samples=request.robust_cull_samples,
                        seed=request.robust_seed,
                        yield_margin_z=request.robust_margin_z)


def settings_for(request: JobRequest):
    """The single-Vth Procedure 2 settings a request maps to."""
    from repro.optimize.heuristic import HeuristicSettings

    return HeuristicSettings(strategy=request.strategy,
                             search_budget=request.search_budget,
                             seed=request.seed,
                             m_steps=request.m_steps,
                             grid_vdd=request.grid_vdd,
                             grid_vth=request.grid_vth,
                             refine_iters=request.refine_iters,
                             refine_rounds=request.refine_rounds,
                             width_method=request.width_method,
                             engine=request.engine,
                             robust=robust_config_for(request))


def search_fingerprint_for(request: JobRequest) -> Dict[str, object]:
    """The *exact* checkpoint fingerprint the solver will demand.

    Recovery validates an on-disk checkpoint against this before
    resuming; :class:`~repro.runtime.checkpoint.SearchCheckpoint.load`
    compares the full key/value set, so this must be byte-for-byte what
    ``optimize_joint`` computes internally — hence the delegation to the
    optimizer's own fingerprint function rather than a reimplementation.
    """
    from repro.engine import resolve_engine_name
    from repro.optimize.heuristic import _ranges, _search_fingerprint

    problem = problem_for(request)
    settings = settings_for(request)
    vdd_range, vth_range = _ranges(problem, settings)
    return _search_fingerprint(problem, settings, vdd_range, vth_range,
                               resolve_engine_name(request.engine))


def request_fingerprint(request: JobRequest
                        ) -> Tuple[Dict[str, object], str]:
    """Content address of a request: (fingerprint dict, sha256 digest).

    Extends the search fingerprint with everything else that shapes the
    *result* but not the checkpoint — technology deck, activity profile,
    multi-Vth count, fallback mode — so two jobs share a cache slot iff
    they are guaranteed to produce the identical result.
    """
    fingerprint = dict(search_fingerprint_for(request))
    fingerprint.update({
        "circuit": request.circuit,
        "technology": request.deck,
        "activity": request.activity,
        "probability": request.probability,
        "n_vth": request.n_vth,
        "fallback": request.fallback,
    })
    canonical = json.dumps(fingerprint, sort_keys=True,
                           separators=(",", ":"))
    return fingerprint, hashlib.sha256(canonical.encode()).hexdigest()


def result_digest(payload: Mapping[str, object]) -> str:
    """Integrity digest of a cached/served result payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- jobs ------------------------------------------------------------------


@dataclass
class Job:
    """One accepted request and its position in the lifecycle."""

    job_id: str
    request: JobRequest
    #: Content-address digest (cache key) of the request.
    digest: str
    #: Monotonic submission sequence number (FIFO tie-break).
    seq: int
    priority: int = 0
    deadline_s: Optional[float] = None
    state: str = QUEUED
    #: Free-form context of the last transition (error labels,
    #: degradation records, ``{"recovered": true}`` markers...).
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Status-file form of the job."""
        return {
            "job_id": self.job_id,
            "request": self.request.to_dict(),
            "digest": self.digest,
            "seq": self.seq,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "state": self.state,
            "detail": self.detail,
            "terminal": self.state in TERMINAL_STATES,
        }

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


def transition(job: Job, state: str,
               detail: Optional[Mapping[str, object]] = None) -> None:
    """Apply one validated lifecycle transition in place.

    Raises :class:`~repro.errors.JobStateError` on an illegal move
    (e.g. out of a terminal state) — the journal must never record a
    transition the state machine would refuse to replay.
    """
    if state not in JOB_STATES:
        raise JobStateError(f"unknown job state {state!r}")
    allowed = _TRANSITIONS.get(job.state, frozenset())
    if state not in allowed:
        raise JobStateError(
            f"job {job.job_id}: illegal transition {job.state} -> {state}")
    job.state = state
    job.detail = dict(detail or {})


# -- journal replay --------------------------------------------------------


def replay(records: Iterable[Mapping[str, object]]) -> Dict[str, Job]:
    """Rebuild the job table from journal records, oldest first.

    Damage-tolerant by design: duplicate job ids, transitions for
    unknown jobs, and transitions the state machine rejects are logged
    and *skipped*, never fatal — a recovering daemon must come up with
    every salvageable job rather than refuse to start. Returns jobs in
    submission order (dict insertion order).
    """
    jobs: Dict[str, Job] = {}
    for record in records:
        kind = record.get("type")
        if kind == "job":
            job_id = str(record.get("job_id", ""))
            if not job_id:
                LOGGER.warning("journal: job record without job_id skipped")
                continue
            if job_id in jobs:
                LOGGER.warning("journal: duplicate job id %s skipped",
                               job_id)
                continue
            try:
                request = JobRequest.from_dict(record["request"])
            except (KeyError, TypeError, OptimizationError) as exc:
                LOGGER.warning("journal: unparseable request for %s "
                               "skipped (%s)", job_id, exc)
                continue
            jobs[job_id] = Job(job_id=job_id, request=request,
                               digest=str(record.get("digest", "")),
                               seq=int(record.get("seq", 0)),
                               priority=int(record.get("priority", 0)),
                               deadline_s=record.get("deadline_s"))
        elif kind == "state":
            job_id = str(record.get("job_id", ""))
            job = jobs.get(job_id)
            if job is None:
                LOGGER.warning("journal: transition for unknown job %s "
                               "skipped", job_id)
                continue
            try:
                transition(job, str(record.get("state", "")),
                           record.get("detail"))
            except JobStateError as exc:
                LOGGER.warning("journal: %s", exc)
        else:
            LOGGER.warning("journal: unknown record type %r skipped", kind)
    return jobs


def job_table_rows(jobs: Mapping[str, Job]) -> List[Dict[str, object]]:
    """Compact listing rows (``repro jobs``), newest submissions last."""
    rows = []
    for job in sorted(jobs.values(), key=lambda item: item.seq):
        rows.append({
            "job_id": job.job_id,
            "circuit": job.request.circuit,
            "state": job.state,
            "priority": job.priority,
            "digest": job.digest[:12],
            "detail": job.detail,
        })
    return rows
