"""The optimization service: journaled queue + cache + supervised pool.

:class:`OptimizationService` composes the robustness substrate the
earlier layers provide into a long-running daemon:

* every accepted job and every lifecycle transition is written to the
  **write-ahead journal** (:mod:`repro.serve.journal`) before it takes
  effect, so a SIGKILLed daemon recovers every job on restart — queued
  jobs re-enqueue, running jobs re-enqueue and **resume from their
  checkpoint** (the solver's corner-level resume makes the recovered
  result identical to an uninterrupted run);
* admission is bounded (:mod:`repro.serve.admission`): at capacity, new
  submissions get a labeled ``ServiceOverloaded`` rejection;
* results are served from the **content-addressed cache**
  (:mod:`repro.serve.cache`) when possible — a hit never touches the
  pool and returns the byte-identical payload of the original solve;
* execution rides the PR 4 supervised pool
  (:func:`repro.runtime.supervisor.run_sharded`): heartbeats, retries,
  crash respawn, and poison-job quarantine apply to service jobs
  exactly as to batch sweeps.

Submission is file-based (no network dependency): clients drop request
files into ``spool/``, the daemon replies into ``replies/`` and keeps a
live status file per job under ``jobs/``; ``control/<job>.cancel``
markers request cooperative cancellation, honoured mid-search via the
solver's own :class:`~repro.runtime.controller.RunController` checks.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import (CheckpointError, DeadlineExceeded,
                          FallbackExhaustedError, InfeasibleError,
                          OptimizationError, ReproError, RunCancelled,
                          ServiceOverloaded)
from repro.obs.instrument import (SERVE_CHECKPOINT_DISCARDED,
                                  SERVE_JOBS_RECOVERED, SERVE_JOBS_REJECTED,
                                  SERVE_JOBS_SUBMITTED, serve_state_metric)
from repro.obs.metrics import MetricsRegistry, current_metrics, use_metrics
from repro.runtime.atomicio import atomic_write_json, atomic_write_text, \
    read_json_object
from repro.runtime.controller import ProgressEvent, RunController
from repro.runtime.supervisor import ParallelPlan, run_sharded
from repro.runtime.tasks import Task, TaskResult
from repro.serve import jobs as lifecycle
from repro.serve.admission import AdmissionQueue
from repro.serve.cache import ResultCache
from repro.serve.jobs import (Job, JobRequest, request_fingerprint, replay,
                              search_fingerprint_for, transition)
from repro.serve.journal import JobJournal

LOGGER = logging.getLogger("repro.serve")

#: Sub-directories of a service root.
SPOOL_DIR = "spool"
REPLIES_DIR = "replies"
JOBS_DIR = "jobs"
RESULTS_DIR = "results"
CACHE_DIR = "cache"
CHECKPOINTS_DIR = "checkpoints"
CONTROL_DIR = "control"

JOURNAL_FILE = "journal.jsonl"
EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.json"
DAEMON_FILE = "daemon.json"


class _JobRunController(RunController):
    """Run control inside one job's solve: deadline + cancel marker.

    The cancel marker is a file (``control/<job>.cancel``) so
    cooperative cancellation reaches the solve wherever it runs — the
    in-process path and pool workers alike — through the solver's
    ordinary per-evaluation ``check()`` calls.

    Deliberately carries *no* ``checkpoint_path``: the solve gets
    ``resume_from`` explicitly instead. An ambient checkpoint path
    would leak the first fallback stage's checkpoint into the later
    recovery stages (whose fingerprints differ), turning each of them
    into a ``CheckpointError``.
    """

    def __init__(self, cancel_path: Path, deadline_s: Optional[float]):
        super().__init__(deadline_s=deadline_s)
        self._cancel_path = cancel_path

    def check(self, where: str = "") -> None:
        if not self.cancelled and self._cancel_path.exists():
            self.cancel()
        super().check(where)


def _execute_job_task(_state, request_dict: Dict[str, object],
                      checkpoint_path: str, cancel_path: str
                      ) -> Dict[str, object]:
    """Solve one job (pool task function; module-level, picklable).

    Returns exactly one of::

        {"result": {...}, ...diagnostics}     # clean or degraded solve
        {"failed": {...}, ...diagnostics}     # deterministic failure
        {"cancelled": true, ...diagnostics}   # cooperative cancel

    Deterministic failures (infeasible constraint, exhausted fallback,
    expired job deadline) return a labeled ``failed`` payload instead of
    raising so the supervisor does not burn retries re-deriving the
    same outcome. Unexpected exceptions *do* propagate — those are what
    retries and quarantine are for.

    An existing checkpoint is validated against the request's search
    fingerprint *before* the solve: a corrupt/truncated file or one
    from a different search is moved aside (``.corrupt``) and the job
    recomputes from scratch — stale state is never resumed. The
    pre-check matters because the fallback path deliberately absorbs
    per-stage errors and would otherwise mask the corruption.
    """
    from repro.obs.serialize import json_sanitize
    from repro.optimize.persist import design_to_dict
    from repro.runtime.checkpoint import SearchCheckpoint
    from repro.serve.jobs import problem_for, settings_for

    request = JobRequest.from_dict(request_dict)
    ckpt = Path(checkpoint_path)
    diagnostics: Dict[str, object] = {"checkpoint_discarded": False,
                                      "resumed_corners": 0}
    if ckpt.exists():
        try:
            loaded = SearchCheckpoint.load(
                ckpt, search_fingerprint_for(request))
            diagnostics["resumed_corners"] = len(loaded.log)
        except CheckpointError as exc:
            quarantined = ckpt.with_suffix(ckpt.suffix + ".corrupt")
            os.replace(ckpt, quarantined)
            current_metrics().incr(SERVE_CHECKPOINT_DISCARDED)
            diagnostics["checkpoint_discarded"] = True
            diagnostics["checkpoint_error"] = str(exc)
            LOGGER.warning("job checkpoint %s unusable, recomputing "
                           "fresh (%s)", ckpt.name, exc)

    problem = problem_for(request)
    settings = settings_for(request)
    controller = _JobRunController(Path(cancel_path), request.deadline_s)
    from repro.runtime.controller import use_controller

    try:
        with use_controller(controller):
            if request.n_vth > 1:
                from repro.optimize.multivth import (MultiVthSettings,
                                                     optimize_multi_vth)

                result = optimize_multi_vth(
                    problem, MultiVthSettings(single=settings),
                    resume_from=ckpt)
            elif request.fallback:
                from repro.runtime.fallback import optimize_with_fallback

                result = optimize_with_fallback(problem, settings,
                                                resume_from=ckpt)
            else:
                from repro.optimize.heuristic import optimize_joint

                result = optimize_joint(problem, settings,
                                        resume_from=ckpt)
    except RunCancelled:
        return {"cancelled": True, **diagnostics}
    except DeadlineExceeded as exc:
        return {"failed": {"error": "DeadlineExceeded",
                           "message": str(exc)}, **diagnostics}
    except (InfeasibleError, FallbackExhaustedError) as exc:
        failure = {"error": type(exc).__name__, "message": str(exc)}
        if isinstance(exc, FallbackExhaustedError):
            failure["attempts"] = json_sanitize(list(exc.attempts))
        return {"failed": failure, **diagnostics}
    except CheckpointError as exc:
        # Belt-and-braces: checkpoint damage surfacing mid-solve is a
        # labeled failure, never an unhandled traceback.
        return {"failed": {"error": "CheckpointError",
                           "message": str(exc)}, **diagnostics}

    degradation = getattr(result, "degradation", None) or None
    payload = {
        "summary": json_sanitize(result.summary()),
        "design": json_sanitize(design_to_dict(result)),
        "degraded": bool(result.details.get("degraded", False)),
        "degradation": json_sanitize(dict(degradation))
        if degradation else None,
    }
    robust = result.details.get("robust")
    if robust is not None:
        payload["robust"] = json_sanitize(robust)
    return {"result": payload, **diagnostics}


class OptimizationService:
    """One service instance rooted at a directory.

    Constructing the service **is** recovery: the journal is opened
    with tail repair, replayed into the job table, and every
    non-terminal job is re-enqueued (running jobs via the journaled
    ``RUNNING → QUEUED`` recovery transition, keeping their checkpoint
    for resume). A fresh root is simply an empty journal.
    """

    def __init__(self, root: str | Path, capacity: int = 16,
                 pool_jobs: int = 1, retries: int = 2,
                 cache_entries: int = 256, poll_s: float = 0.05,
                 registry: Optional[MetricsRegistry] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        for name in (SPOOL_DIR, REPLIES_DIR, JOBS_DIR, RESULTS_DIR,
                     CHECKPOINTS_DIR, CONTROL_DIR):
            (self.root / name).mkdir(exist_ok=True)
        self.pool_jobs = max(1, int(pool_jobs))
        self.retries = retries
        self.poll_s = poll_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queue = AdmissionQueue(capacity)
        self.cache = ResultCache(self.root / CACHE_DIR,
                                 max_entries=cache_entries)
        self.jobs: Dict[str, Job] = {}
        #: Spool source name -> job id (exactly-once file submission).
        self._sources: Dict[str, str] = {}
        self._next_seq = 1
        with use_metrics(self.registry):
            self.journal, records = JobJournal.open_repair(
                self.root / JOURNAL_FILE)
            self._recover(records)

    # -- recovery ----------------------------------------------------------

    def _recover(self, records: List[Dict[str, object]]) -> None:
        self.jobs = replay(records)
        for record in records:
            if record.get("type") == "job" and record.get("source") \
                    and str(record.get("job_id", "")) in self.jobs:
                self._sources[str(record["source"])] = str(record["job_id"])
        recovered = 0
        for job in self.jobs.values():
            self._next_seq = max(self._next_seq, job.seq + 1)
            if job.state == lifecycle.RUNNING:
                # The daemon died mid-run: re-enqueue, keep the
                # checkpoint — the solve resumes where it stopped.
                self._transition(job, lifecycle.QUEUED,
                                 {"recovered": True})
                self.queue.push(job.job_id, job.priority, job.seq,
                                force=True)
                recovered += 1
            elif job.state == lifecycle.QUEUED:
                self.queue.push(job.job_id, job.priority, job.seq,
                                force=True)
                recovered += 1
            self._write_status(job)
        if recovered:
            self.registry.incr(SERVE_JOBS_RECOVERED, recovered)
            LOGGER.warning("recovered %d unfinished job(s) from %s",
                           recovered, self.journal.path)

    # -- submission --------------------------------------------------------

    def submit(self, request: JobRequest,
               source: Optional[str] = None) -> Job:
        """Admit one request; raises :class:`ServiceOverloaded` if full."""
        with use_metrics(self.registry):
            fingerprint, digest = request_fingerprint(request)
            seq = self._next_seq
            job_id = f"job-{seq:06d}-{digest[:8]}"
            try:
                self.queue.push(job_id, request.priority, seq)
            except ServiceOverloaded:
                self.registry.incr(SERVE_JOBS_REJECTED)
                raise
            self._next_seq = seq + 1
            record = {"type": "job", "job_id": job_id, "seq": seq,
                      "request": request.to_dict(), "digest": digest,
                      "priority": request.priority,
                      "deadline_s": request.deadline_s,
                      "ts": time.time()}
            if source is not None:
                record["source"] = source
            try:
                self.journal.append(record)
            except ReproError:
                self.queue.remove(job_id)
                raise
            job = Job(job_id=job_id, request=request, digest=digest,
                      seq=seq, priority=request.priority,
                      deadline_s=request.deadline_s)
            self.jobs[job_id] = job
            if source is not None:
                self._sources[source] = job_id
            self.registry.incr(SERVE_JOBS_SUBMITTED)
            self.registry.incr(serve_state_metric(lifecycle.QUEUED))
            self._write_status(job)
            self._emit_event(job)
            return job

    # -- lifecycle ---------------------------------------------------------

    def _transition(self, job: Job, state: str,
                    detail: Optional[Dict[str, object]] = None) -> None:
        """Validate, journal, apply, and instrument one transition."""
        transition(job, state, detail)
        self.journal.append({"type": "state", "job_id": job.job_id,
                             "state": state, "detail": job.detail,
                             "ts": time.time()})
        self.registry.incr(serve_state_metric(state))
        self._write_status(job)
        self._emit_event(job)

    def _write_status(self, job: Job) -> None:
        atomic_write_json(self.root / JOBS_DIR / f"{job.job_id}.json",
                          job.to_dict())

    def _emit_event(self, job: Job) -> None:
        """Append one ProgressEvent per transition to ``events.jsonl``."""
        event = ProgressEvent(phase=f"serve.{job.state.lower()}",
                              evaluations=job.seq, best_energy=math.inf,
                              elapsed_s=0.0,
                              metrics=self.registry.counters()
                              if self.registry.enabled else None)
        with open(self.root / EVENTS_FILE, "a") as stream:
            stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    # -- file protocol ------------------------------------------------------

    def poll_spool(self) -> int:
        """Process pending submission files; returns submissions seen."""
        with use_metrics(self.registry):
            processed = 0
            for path in sorted((self.root / SPOOL_DIR).glob("*.json")):
                processed += 1
                reply_path = self.root / REPLIES_DIR / path.name
                if path.name in self._sources:
                    # Replayed after a crash between journal append and
                    # reply write: acknowledge the existing job, never
                    # submit a duplicate.
                    job = self.jobs[self._sources[path.name]]
                    reply = {"status": "accepted", "job_id": job.job_id,
                             "digest": job.digest}
                elif reply_path.exists():
                    path.unlink()
                    continue
                else:
                    reply = self._admit_file(path)
                atomic_write_json(reply_path, reply)
                path.unlink()
            return processed

    def _admit_file(self, path: Path) -> Dict[str, object]:
        try:
            payload = read_json_object(path, error=OptimizationError)
            request = JobRequest.from_dict(payload)
            job = self.submit(request, source=path.name)
        except ServiceOverloaded as exc:
            return {"status": "rejected", "error": "ServiceOverloaded",
                    "message": str(exc), "capacity": exc.capacity,
                    "queued": exc.queued}
        except ReproError as exc:
            return {"status": "invalid", "error": type(exc).__name__,
                    "message": str(exc)}
        return {"status": "accepted", "job_id": job.job_id,
                "digest": job.digest}

    def poll_control(self) -> None:
        """Honour cancel markers for queued jobs; clean up stale ones."""
        with use_metrics(self.registry):
            for marker in (self.root / CONTROL_DIR).glob("*.cancel"):
                job_id = marker.name[:-len(".cancel")]
                job = self.jobs.get(job_id)
                if job is None or job.terminal:
                    marker.unlink(missing_ok=True)
                elif job.state == lifecycle.QUEUED:
                    self.queue.remove(job_id)
                    self._transition(job, lifecycle.CANCELLED,
                                     {"cancelled": True})
                    marker.unlink(missing_ok=True)
                # RUNNING: leave the marker — the solve's controller
                # sees it and stops cooperatively.

    def cancel(self, job_id: str) -> None:
        """Request cancellation of a job (queued or running)."""
        (self.root / CONTROL_DIR / f"{job_id}.cancel").touch()
        self.poll_control()

    # -- execution ----------------------------------------------------------

    def _checkpoint_path(self, job: Job) -> Path:
        return self.root / CHECKPOINTS_DIR / f"{job.job_id}.ckpt"

    def _cancel_path(self, job_id: str) -> Path:
        return self.root / CONTROL_DIR / f"{job_id}.cancel"

    def step(self) -> int:
        """Run one batch of queued jobs to terminal (or re-queued) state.

        Returns the number of jobs taken off the queue. Cache hits are
        finished inline — the pool never sees them.
        """
        with use_metrics(self.registry):
            batch: List[Job] = []
            while len(batch) < self.pool_jobs:
                job_id = self.queue.pop()
                if job_id is None:
                    break
                job = self.jobs.get(job_id)
                if job is None or job.state != lifecycle.QUEUED:
                    continue
                batch.append(job)
            if not batch:
                return 0
            misses: List[Job] = []
            for job in batch:
                self._transition(job, lifecycle.RUNNING, {})
                cached = self.cache.get(job.digest)
                if cached is not None:
                    self._finish(job, cached, cached_hit=True)
                else:
                    misses.append(job)
            if misses:
                self._execute(misses)
            return len(batch)

    def _execute(self, misses: List[Job]) -> None:
        by_id = {job.job_id: job for job in misses}
        tasks = [Task(key=job.job_id, index=index, fn=_execute_job_task,
                      args=(job.request.to_dict(),
                            str(self._checkpoint_path(job)),
                            str(self._cancel_path(job.job_id))))
                 for index, job in enumerate(misses)]
        plan = ParallelPlan(jobs=min(self.pool_jobs, len(tasks)),
                            retries=self.retries)

        def on_result(outcome: TaskResult) -> None:
            self._apply_outcome(by_id[outcome.key], outcome)

        try:
            run_sharded(tasks, plan=plan, on_result=on_result,
                        what="serve batch")
        except (RunCancelled, DeadlineExceeded, OptimizationError) as exc:
            # A run-level abort (ambient controller, pool failure)
            # leaves some jobs mid-flight; re-queue them journaled so
            # nothing is lost.
            LOGGER.warning("serve batch aborted (%s); re-queueing "
                           "unfinished jobs", exc)
        for job in misses:
            if job.state == lifecycle.RUNNING:
                self._requeue(job, reason="batch aborted")

    def _apply_outcome(self, job: Job, outcome: TaskResult) -> None:
        diagnostics = {}
        if outcome.ok and isinstance(outcome.value, dict):
            diagnostics = {
                key: outcome.value.get(key)
                for key in ("checkpoint_discarded", "resumed_corners",
                            "checkpoint_error")
                if outcome.value.get(key) not in (None, False, 0)}
        if outcome.status == "quarantined":
            self._transition(job, lifecycle.QUARANTINED,
                             dict(outcome.degradation))
        elif outcome.status == "skipped":
            self._requeue(job, reason="skipped")
        elif not isinstance(outcome.value, dict):
            self._transition(job, lifecycle.FAILED,
                             {"error": "BadTaskValue",
                              "message": f"unexpected task value "
                                         f"{type(outcome.value).__name__}"})
        elif outcome.value.get("cancelled"):
            self._transition(job, lifecycle.CANCELLED,
                             {"cancelled": True, **diagnostics})
            self._cancel_path(job.job_id).unlink(missing_ok=True)
        elif "failed" in outcome.value:
            self._transition(job, lifecycle.FAILED,
                             {**outcome.value["failed"], **diagnostics})
        else:
            payload = outcome.value["result"]
            self._finish(job, payload, cached_hit=False,
                         diagnostics=diagnostics)
            fingerprint, _digest = request_fingerprint(job.request)
            self.cache.put(job.digest, fingerprint, payload)

    def _requeue(self, job: Job, reason: str) -> None:
        self._transition(job, lifecycle.QUEUED, {"requeued": reason})
        self.queue.push(job.job_id, job.priority, job.seq, force=True)

    def _finish(self, job: Job, payload: Dict[str, object],
                cached_hit: bool,
                diagnostics: Optional[Dict[str, object]] = None) -> None:
        """Persist the result payload and make the terminal transition.

        The result file is the canonical JSON of the payload alone —
        no timestamps, no cache/diagnostic markers — so a cache hit
        reproduces the original solve's bytes exactly.
        """
        result_file = self.root / RESULTS_DIR / f"{job.job_id}.json"
        atomic_write_text(result_file,
                          json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
        state = (lifecycle.DEGRADED if payload.get("degraded")
                 else lifecycle.DONE)
        detail: Dict[str, object] = {"cached": cached_hit,
                                     "result_file": str(result_file)}
        if payload.get("degradation"):
            detail["degradation"] = payload["degradation"]
        if diagnostics:
            detail.update(diagnostics)
        self._transition(job, state, detail)
        self._checkpoint_path(job).unlink(missing_ok=True)

    # -- the daemon loop -----------------------------------------------------

    def run(self, max_jobs: Optional[int] = None,
            max_idle_s: Optional[float] = None,
            sleep: Callable[[float], None] = time.sleep) -> int:
        """Serve until ``max_jobs`` finished or idle for ``max_idle_s``.

        With both limits ``None`` the loop runs until the process is
        killed — which is safe by construction: every accepted job is
        journaled before it is acknowledged.
        """
        finished = 0
        last_activity = time.monotonic()
        atomic_write_json(self.root / DAEMON_FILE,
                          {"pid": os.getpid(), "started": time.time()})
        try:
            while True:
                submitted = self.poll_spool()
                self.poll_control()
                stepped = self.step()
                finished += stepped
                if submitted or stepped:
                    last_activity = time.monotonic()
                    self.write_metrics()
                if max_jobs is not None and finished >= max_jobs:
                    break
                if not submitted and not stepped:
                    if max_idle_s is not None and \
                            time.monotonic() - last_activity >= max_idle_s:
                        break
                    sleep(self.poll_s)
        finally:
            self.write_metrics()
            self.close()
        return finished

    def write_metrics(self) -> None:
        """Snapshot the service counters to ``metrics.json`` (atomic)."""
        self.registry.write(self.root / METRICS_FILE)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
