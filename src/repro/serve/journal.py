"""The write-ahead job journal: append-only JSONL with tail repair.

Every accepted job and every lifecycle transition is appended (and
fsynced) *before* the service acts on it, so a SIGKILLed daemon can
rebuild its exact queue state by replaying the journal on restart.

The failure mode of an append-only log is a **torn tail**: the process
died mid-write and the last line is half a record. :meth:`JobJournal.read`
detects this — any undecodable or non-object line — and reports the byte
offset of the last good record; :meth:`JobJournal.open_repair` truncates
the file there with a *warning*, never a traceback, because everything
before the tear is intact and must be recovered. Damage anywhere but the
tail also truncates (dropping the suffix): a record after a corrupt line
cannot be trusted to be ordered correctly, and the state machine replay
(:func:`repro.serve.jobs.replay`) tolerates the resulting dangling jobs
by re-enqueueing them.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import JournalError
from repro.obs.instrument import SERVE_JOURNAL_TRUNCATED
from repro.obs.metrics import current_metrics

LOGGER = logging.getLogger("repro.serve")


@dataclass(frozen=True)
class JournalDamage:
    """Description of a torn/corrupt journal tail found by :func:`read`."""

    #: Byte offset of the first damaged line (= size of the good prefix).
    good_bytes: int
    #: 1-based line number of the first damaged line.
    line_number: int
    #: Why the line was rejected (decode error, non-object...).
    reason: str


def read(path: str | Path
         ) -> Tuple[List[Dict[str, object]], Optional[JournalDamage]]:
    """Parse journal records, stopping at the first damaged line.

    Returns ``(records, damage)`` where ``damage`` is ``None`` for a
    clean journal. A missing or empty journal is simply ``([], None)``
    — a fresh service. Never raises on content damage; raises
    :class:`~repro.errors.JournalError` only when the file itself is
    unreadable (permissions, I/O error).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], None
    except OSError as exc:
        raise JournalError(f"{path}: unreadable journal ({exc})") from None
    records: List[Dict[str, object]] = []
    offset = 0
    line_number = 0
    for raw_line in data.split(b"\n"):
        if offset >= len(data):
            break
        line_number += 1
        # A line not terminated by "\n" was torn mid-append: even if it
        # happens to decode, it is not durable — treat it as damage.
        terminated = offset + len(raw_line) < len(data)
        line = raw_line.strip()
        if line:
            reason = None
            if not terminated:
                reason = "unterminated final line (torn append)"
            else:
                try:
                    record = json.loads(line.decode("utf-8", "strict"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    reason = f"undecodable record ({exc})"
                else:
                    if isinstance(record, dict):
                        records.append(record)
                    else:
                        reason = (f"expected a JSON object, got "
                                  f"{type(record).__name__}")
            if reason is not None:
                return records, JournalDamage(good_bytes=offset,
                                              line_number=line_number,
                                              reason=reason)
        offset += len(raw_line) + 1
    return records, None


class JobJournal:
    """Appender for one service's write-ahead journal."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._stream = None

    @classmethod
    def open_repair(cls, path: str | Path
                    ) -> Tuple["JobJournal", List[Dict[str, object]]]:
        """Open a journal for appending, repairing any torn tail first.

        Returns ``(journal, records)`` — the replayable good prefix.
        Damage is logged as a warning and counted on the ambient metrics
        registry (:data:`SERVE_JOURNAL_TRUNCATED`); it never raises.
        """
        path = Path(path)
        records, damage = read(path)
        if damage is not None:
            LOGGER.warning(
                "journal %s: truncating damaged tail at line %d "
                "(byte %d): %s", path, damage.line_number,
                damage.good_bytes, damage.reason)
            current_metrics().incr(SERVE_JOURNAL_TRUNCATED)
            with open(path, "rb+") as stream:
                stream.truncate(damage.good_bytes)
                stream.flush()
                os.fsync(stream.fileno())
        return cls(path), records

    def append(self, record: Mapping[str, object]) -> None:
        """Durably append one record (single line, flushed + fsynced)."""
        line = json.dumps(dict(record), sort_keys=True,
                          separators=(",", ":"))
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._stream = open(self.path, "a")
            except OSError as exc:
                raise JournalError(
                    f"{self.path}: cannot open journal ({exc})") from None
        self._stream.write(line + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
