"""Content-addressed result cache with integrity checking and LRU cap.

Entries are keyed by the request's content-address digest
(:func:`repro.serve.jobs.request_fingerprint`): netlist + technology +
constraints + engine + search knobs. Two requests share a slot iff
their solves are guaranteed identical, so a hit can skip the pool
entirely and still return the byte-identical result a fresh solve
would produce.

Robustness properties:

* every entry carries an **integrity digest** of its result payload; a
  corrupted entry (bit-rot, torn write from a pre-atomic tool, manual
  edit) is *quarantined* — moved into ``quarantine/`` for post-mortem —
  and recomputed, never served;
* writes go through :func:`~repro.runtime.atomicio.atomic_write_json`,
  so a crash mid-``put`` can not tear an entry;
* the store is bounded: beyond ``max_entries`` the least-recently-used
  entries (file mtime; hits refresh it) are evicted.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.errors import ReproError
from repro.obs.instrument import (SERVE_CACHE_CORRUPT, SERVE_CACHE_EVICTIONS,
                                  SERVE_CACHE_HITS, SERVE_CACHE_MISSES)
from repro.obs.metrics import current_metrics
from repro.runtime.atomicio import atomic_write_json, read_json_object
from repro.serve.jobs import result_digest

LOGGER = logging.getLogger("repro.serve")

FORMAT_KEY = "repro-result-cache"
FORMAT_VERSION = 1


class CacheEntryError(ReproError):
    """A cache entry is unreadable, malformed, or fails its integrity
    digest (internal to :class:`ResultCache`; corrupt entries are
    quarantined, not raised to callers)."""


class ResultCache:
    """Bounded, integrity-checked result store under one directory."""

    def __init__(self, root: str | Path, max_entries: int = 256):
        if max_entries < 1:
            raise ReproError(
                f"cache max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.quarantine_dir = self.root / "quarantine"
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    def _entry_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached result payload for ``digest``, or ``None``.

        A hit increments :data:`SERVE_CACHE_HITS` and refreshes the
        entry's LRU clock; a miss increments :data:`SERVE_CACHE_MISSES`.
        An entry failing validation is quarantined (moved, counted on
        :data:`SERVE_CACHE_CORRUPT`) and reported as a miss — corrupt
        data is never served.
        """
        path = self._entry_path(digest)
        metrics = current_metrics()
        if not path.exists():
            metrics.incr(SERVE_CACHE_MISSES)
            return None
        try:
            payload = self._validate(path, digest)
        except CacheEntryError as exc:
            self._quarantine(path, str(exc))
            metrics.incr(SERVE_CACHE_MISSES)
            return None
        metrics.incr(SERVE_CACHE_HITS)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return payload["result"]

    def put(self, digest: str, fingerprint: Mapping[str, object],
            result: Mapping[str, object]) -> Path:
        """Store ``result`` under ``digest`` atomically, then evict LRU."""
        path = atomic_write_json(self._entry_path(digest), {
            "_format": FORMAT_KEY,
            "_version": FORMAT_VERSION,
            "digest": digest,
            "fingerprint": dict(fingerprint),
            "integrity": result_digest(result),
            "result": dict(result),
        })
        self._evict()
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # -- internals ---------------------------------------------------------

    def _validate(self, path: Path, digest: str) -> Dict[str, object]:
        payload = read_json_object(path, error=CacheEntryError)
        if payload.get("_format") != FORMAT_KEY:
            raise CacheEntryError(f"{path}: not a cache entry")
        if payload.get("digest") != digest:
            raise CacheEntryError(
                f"{path}: entry digest {payload.get('digest')!r} does not "
                f"match its address {digest!r}")
        result = payload.get("result")
        if not isinstance(result, dict):
            raise CacheEntryError(f"{path}: entry has no result object")
        if result_digest(result) != payload.get("integrity"):
            raise CacheEntryError(
                f"{path}: integrity digest mismatch (corrupt entry)")
        return payload

    def _quarantine(self, path: Path, reason: str) -> None:
        LOGGER.warning("cache: quarantining %s (%s)", path.name, reason)
        current_metrics().incr(SERVE_CACHE_CORRUPT)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / f"{path.name}.{int(time.time())}"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _evict(self) -> None:
        entries = sorted(self.root.glob("*.json"),
                         key=lambda entry: entry.stat().st_mtime)
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        metrics = current_metrics()
        for entry in entries[:excess]:
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - entry raced away
                continue
            metrics.incr(SERVE_CACHE_EVICTIONS)
            LOGGER.info("cache: evicted %s (LRU, cap %d)", entry.name,
                        self.max_entries)


def entry_summary(root: str | Path) -> Dict[str, object]:
    """Cheap census of a cache directory (for status/benchmarks)."""
    root = Path(root)
    entries = list(root.glob("*.json")) if root.exists() else []
    quarantined = (list((root / "quarantine").glob("*"))
                   if (root / "quarantine").exists() else [])
    return {
        "entries": len(entries),
        "quarantined": len(quarantined),
        "bytes": sum(entry.stat().st_size for entry in entries),
    }


def corrupt_entry_for_test(root: str | Path, digest: str) -> Path:
    """Flip the stored result of an entry (tests/CI only).

    Rewrites the entry with a mutated result but the *old* integrity
    digest, simulating bit-rot that JSON parsing alone cannot catch.
    """
    root = Path(root)
    path = root / f"{digest}.json"
    payload = read_json_object(path, error=CacheEntryError)
    result = dict(payload["result"])
    result["_tampered"] = True
    payload["result"] = result
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
