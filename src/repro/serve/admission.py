"""Admission control: a bounded priority queue with explicit rejection.

The service accepts at most ``capacity`` queued-or-running jobs. A
submission beyond that is **rejected immediately** with a labeled
:class:`~repro.errors.ServiceOverloaded` — backpressure by refusal, not
by unbounded buffering or blocking the submitter. Rejection is the
load-shedding contract the ROADMAP's serving goal requires: memory use
is bounded by ``capacity`` regardless of offered load, and a client
holding a rejection knows to retry later rather than waiting on a queue
that may never drain.

Ordering: higher ``priority`` first; within a priority, submission
order (the journal sequence number). Cancellation uses lazy removal —
the heap entry is tombstoned and skipped at pop time — so cancel is
O(1) and the heap never needs re-building.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.errors import ServiceOverloaded


class AdmissionQueue:
    """Bounded max-priority queue of job ids."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServiceOverloaded(
                f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Min-heap of (-priority, seq, job_id).
        self._heap: List[Tuple[int, int, str]] = []
        self._queued: Set[str] = set()
        self._removed: Set[str] = set()

    def __len__(self) -> int:
        return len(self._queued)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._queued

    def push(self, job_id: str, priority: int, seq: int,
             force: bool = False) -> None:
        """Admit one job, or raise :class:`ServiceOverloaded` when full.

        ``force=True`` bypasses the capacity check — used only for
        journal recovery, where the jobs were *already admitted* before
        the crash and dropping them would violate the no-job-lost
        guarantee. Recovery can therefore transiently exceed capacity;
        new submissions stay rejected until the backlog drains.
        """
        if job_id in self._queued:
            return
        if not force and len(self._queued) >= self.capacity:
            raise ServiceOverloaded(
                f"job queue at capacity ({self.capacity}); "
                f"submission rejected", capacity=self.capacity,
                queued=len(self._queued))
        heapq.heappush(self._heap, (-priority, seq, job_id))
        self._queued.add(job_id)
        self._removed.discard(job_id)

    def pop(self) -> Optional[str]:
        """The highest-priority queued job id, or ``None`` when empty."""
        while self._heap:
            _neg_priority, _seq, job_id = heapq.heappop(self._heap)
            if job_id in self._removed:
                self._removed.discard(job_id)
                continue
            if job_id in self._queued:
                self._queued.discard(job_id)
                return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Tombstone a queued job (cancellation); True if it was queued."""
        if job_id not in self._queued:
            return False
        self._queued.discard(job_id)
        self._removed.add(job_id)
        return True
