"""Client side of the file-based service protocol.

A client submits by atomically dropping ``<ticket>.json`` into the
service root's ``spool/`` directory (tickets are unique:
``<time_ns>-<pid>-<random>``); the daemon moves it through admission
and answers with ``replies/<ticket>.json`` — ``accepted`` (with the
job id), ``rejected`` (labeled ``ServiceOverloaded``), or ``invalid``.
Job progress is observable without talking to the daemon at all: the
per-job status files under ``jobs/`` and the journal are both plain
JSON on disk.

Everything here is safe to run while the daemon is down: submissions
queue up in the spool and are admitted when it (re)starts, and
:func:`list_jobs` replays the journal read-only (tolerating a torn
tail) without repairing it.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import DeadlineExceeded, OptimizationError
from repro.runtime.atomicio import atomic_write_json, read_json_object
from repro.serve import journal as journal_mod
from repro.serve.jobs import JobRequest, job_table_rows, replay
from repro.serve.service import (CONTROL_DIR, JOBS_DIR, JOURNAL_FILE,
                                 REPLIES_DIR, SPOOL_DIR)


def new_ticket() -> str:
    """A unique spool ticket name (sortable by submission time)."""
    return f"{time.time_ns():020d}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def submit_request(root: str | Path, request: JobRequest,
                   ticket: Optional[str] = None) -> str:
    """Drop ``request`` into the service spool; returns the ticket name.

    The write is atomic (dot-prefixed temp file + rename), so the
    daemon's ``spool/*.json`` glob can never pick up a half-written
    request.
    """
    root = Path(root)
    ticket = ticket or new_ticket()
    atomic_write_json(root / SPOOL_DIR / f"{ticket}.json",
                      request.to_dict())
    return ticket


def wait_for_reply(root: str | Path, ticket: str,
                   timeout_s: float = 30.0,
                   poll_s: float = 0.05) -> Dict[str, object]:
    """Block until the daemon answers ``ticket`` (or raise on timeout)."""
    reply_path = Path(root) / REPLIES_DIR / f"{ticket}.json"
    deadline = time.monotonic() + timeout_s
    while True:
        if reply_path.exists():
            return read_json_object(reply_path, error=OptimizationError)
        if time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"no reply for ticket {ticket} within {timeout_s:.3g} s "
                f"(is the daemon running?)")
        time.sleep(poll_s)


def read_job_status(root: str | Path,
                    job_id: str) -> Optional[Dict[str, object]]:
    """The job's status file, or ``None`` if not (yet) present."""
    path = Path(root) / JOBS_DIR / f"{job_id}.json"
    if not path.exists():
        return None
    return read_json_object(path, error=OptimizationError)


def wait_for_terminal(root: str | Path, job_id: str,
                      timeout_s: float = 300.0,
                      poll_s: float = 0.05) -> Dict[str, object]:
    """Block until the job reaches a terminal state (or raise)."""
    deadline = time.monotonic() + timeout_s
    while True:
        status = read_job_status(root, job_id)
        if status is not None and status.get("terminal"):
            return status
        if time.monotonic() >= deadline:
            state = status.get("state") if status else "unknown"
            raise DeadlineExceeded(
                f"job {job_id} not terminal within {timeout_s:.3g} s "
                f"(state: {state})")
        time.sleep(poll_s)


def request_cancel(root: str | Path, job_id: str) -> None:
    """Drop a cancel marker; the daemon honours it cooperatively."""
    path = Path(root) / CONTROL_DIR / f"{job_id}.cancel"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.touch()


def list_jobs(root: str | Path) -> List[Dict[str, object]]:
    """Replay the journal read-only into compact job listing rows.

    Tolerates a torn tail (the damaged suffix is simply not listed) and
    never modifies the journal — safe to run concurrently with the
    daemon.
    """
    records, _damage = journal_mod.read(Path(root) / JOURNAL_FILE)
    return job_table_rows(replay(records))


def read_result(root: str | Path, job_id: str) -> Dict[str, object]:
    """The persisted result payload of a finished job."""
    status = read_job_status(root, job_id)
    if status is None:
        raise OptimizationError(f"unknown job {job_id}")
    result_file = status.get("detail", {}).get("result_file")
    if not result_file:
        raise OptimizationError(
            f"job {job_id} has no result (state: {status.get('state')})")
    return read_json_object(result_file, error=OptimizationError)


def read_result_text(root: str | Path, job_id: str) -> str:
    """The exact bytes of a job's result file (byte-identity checks)."""
    status = read_job_status(root, job_id)
    if status is None:
        raise OptimizationError(f"unknown job {job_id}")
    result_file = status.get("detail", {}).get("result_file")
    if not result_file:
        raise OptimizationError(
            f"job {job_id} has no result (state: {status.get('state')})")
    return Path(result_file).read_text()
