"""Command-line interface.

::

    python -m repro optimize s298 --frequency 300 --activity 0.1
    python -m repro optimize my_design.bench --baseline
    python -m repro optimize s298 --trace t.jsonl --metrics m.json --profile
    python -m repro trace-report t.jsonl
    python -m repro info s344
    python -m repro activity s27 --compare
    python -m repro decks
    python -m repro experiments table2 fig2a
    python -m repro serve /var/run/repro --capacity 32 --jobs 4
    python -m repro submit /var/run/repro s298 --wait
    python -m repro jobs /var/run/repro

``optimize`` accepts a built-in benchmark name or a path to an ISCAS
``.bench`` file (flip-flops are cut automatically; pass
``--register-margin`` to charge their clock-to-Q + setup against the
cycle). Results print as an aligned table; ``--json`` emits a
machine-readable summary instead.

Parallelism: ``--jobs N`` (on ``optimize`` and ``experiments``) shards
the grid search / experiment suite across N crash-isolated worker
processes supervised with retries and quarantine; ``--retries`` and
``--task-timeout`` tune the failure policy. Results are identical at
any jobs count, even when workers crash mid-task.

Observability: ``--trace PATH`` records a JSONL span trace of the
search, ``--metrics PATH`` snapshots the hot counters as JSON,
``--profile`` adds per-seam duration histograms, and ``repro
trace-report`` renders a top-span/hot-counter summary from a recorded
trace. ``-v``/``-q`` (before the subcommand) steer the ``repro.*``
logger verbosity.

Serving: ``repro serve ROOT`` runs the resilient optimization-service
daemon (journaled job queue, admission control, content-addressed
result cache — see ``docs/serving.md``); ``repro submit`` and ``repro
jobs`` are its file-protocol clients and work whether or not the
daemon is currently up.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.activity.profiles import uniform_profile
from repro.activity.simulation import simulate_activity
from repro.activity.transition_density import estimate_activity
from repro.analysis.report import format_energy, format_table
from repro.errors import DeadlineExceeded, ReproError
from repro.netlist.bench import parse_bench_file
from repro.netlist.benchmarks import benchmark_circuit, benchmark_names
from repro.netlist.sequential import (
    RegisterTiming,
    parse_sequential_bench_file,
)
from repro.netlist.stats import network_stats
from repro.netlist.validate import lint
from repro.engine import ENGINE_CHOICES
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.runtime.controller import RunController
from repro.runtime.supervisor import ParallelPlan, use_parallel
from repro.search import STRATEGY_CHOICES
from repro.technology.library import deck, deck_names, load_technology
from repro.technology.process import Technology
from repro.units import MHZ, NS, PS

logger = get_logger(__name__)


def _resolve_network(spec: str):
    """A benchmark name or a ``.bench`` path → LogicNetwork."""
    path = Path(spec)
    if path.suffix == ".bench" or path.exists():
        return parse_bench_file(path)
    return benchmark_circuit(spec)


def _resolve_technology(args: argparse.Namespace) -> Technology:
    if getattr(args, "deck_file", None):
        return load_technology(args.deck_file)
    return deck(args.deck)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--deck", default="generic-0.25um",
                        help="built-in technology deck name")
    parser.add_argument("--deck-file", default=None,
                        help="JSON technology deck file (overrides --deck)")
    parser.add_argument("--frequency", type=float, default=300.0,
                        help="clock frequency in MHz (default 300)")
    parser.add_argument("--activity", type=float, default=0.1,
                        help="uniform input transition density (default 0.1)")
    parser.add_argument("--probability", type=float, default=0.5,
                        help="uniform input signal probability (default 0.5)")


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sharded stages "
                             "(default 1 = in-process serial; results "
                             "are identical at any jobs count)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="attempts-1 per task before quarantine "
                             "(default 2)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock deadline inside the "
                             "worker pool (default: none)")


def _parallel_plan(args: argparse.Namespace) -> Optional[ParallelPlan]:
    """The ParallelPlan of ``--jobs/--retries/--task-timeout``, or None.

    Construction validates the values (OptimizationError → exit 1).
    """
    if args.jobs == 1 and args.task_timeout is None:
        return None
    return ParallelPlan(jobs=args.jobs, retries=args.retries,
                        task_timeout_s=args.task_timeout)


def _add_robust_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--yield-target", type=float, default=0.95,
                        metavar="Y",
                        help="minimum timing yield in (0, 1) enforced as "
                             "feasibility (default 0.95)")
    parser.add_argument("--sigma-within", type=float, default=0.010,
                        metavar="V",
                        help="within-die Vth sigma in volts "
                             "(default 0.010)")
    parser.add_argument("--sigma-die", type=float, default=0.015,
                        metavar="V",
                        help="die-to-die Vth sigma in volts "
                             "(default 0.015)")
    parser.add_argument("--samples", type=int, default=40, metavar="N",
                        help="Monte-Carlo samples per corner "
                             "(default 40)")
    parser.add_argument("--cull-samples", type=int, default=8, metavar="N",
                        help="stage-1 samples before hopeless corners "
                             "are culled (default 8)")
    parser.add_argument("--robust-seed", type=int, default=0,
                        help="Monte-Carlo base seed; verification "
                             "re-samples at seed+1 (default 0)")
    parser.add_argument("--yield-margin-z", type=float, default=1.0,
                        metavar="Z",
                        help="guard band on the yield constraint: "
                             "feasibility demands the Wilson lower "
                             "bound at this z clears the target "
                             "(default 1.0; 0 = raw sample yield)")


def _robust_config(args: argparse.Namespace, measure: Optional[str]):
    """Build the validated RobustConfig of the CLI flags, or None.

    Validation happens here — at argument handling, before any search
    starts — so a negative sigma is a labeled error at exit 1, never a
    crash deep inside a worker.
    """
    if measure is None:
        return None
    from repro.robust import RobustConfig

    return RobustConfig(measure=measure,
                        yield_target=args.yield_target,
                        sigma_within=args.sigma_within,
                        sigma_die=args.sigma_die,
                        samples=args.samples,
                        cull_samples=args.cull_samples,
                        seed=args.robust_seed,
                        yield_margin_z=args.yield_margin_z)


def _cmd_optimize(args: argparse.Namespace) -> int:
    tech = _resolve_technology(args)
    spec_path = Path(args.circuit)
    if args.register_margin and (spec_path.suffix == ".bench"
                                 or spec_path.exists()):
        circuit = parse_sequential_bench_file(spec_path)
        from repro.netlist.sequential import sequential_problem

        profile = uniform_profile(circuit.core,
                                  probability=args.probability,
                                  density=args.activity)
        timing = RegisterTiming(clock_to_q=args.register_margin * PS / 2,
                                setup=args.register_margin * PS / 2)
        problem = sequential_problem(tech, circuit, profile,
                                     frequency=args.frequency * MHZ,
                                     timing=timing, n_vth=args.n_vth)
        network = circuit.core
    else:
        network = _resolve_network(args.circuit)
        profile = uniform_profile(network, probability=args.probability,
                                  density=args.activity)
        problem = OptimizationProblem.build(
            tech, network, profile, frequency=args.frequency * MHZ,
            n_vth=args.n_vth, activity_method=args.activity_method)

    registry = (MetricsRegistry()
                if (args.trace or args.metrics or args.profile) else None)
    tracer = Tracer() if args.trace else None
    plan = _parallel_plan(args)
    with contextlib.ExitStack() as stack:
        if registry is not None:
            stack.enter_context(use_metrics(registry))
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if plan is not None:
            stack.enter_context(use_parallel(plan))
        if args.profile:
            from repro.obs.instrument import use_profiling

            stack.enter_context(use_profiling())
        try:
            return _run_optimize(args, problem, network)
        finally:
            # Export even when the run hits its deadline or fails — a
            # partial trace is exactly what explains the abort.
            _export_observability(args, tracer, registry)


def _export_observability(args: argparse.Namespace,
                          tracer: Optional[Tracer],
                          registry: Optional[MetricsRegistry]) -> None:
    if tracer is not None:
        tracer.export_jsonl(args.trace, metrics=registry)
        logger.info("trace written to %s (%d spans)", args.trace,
                    len(tracer.spans))
    if registry is not None and args.metrics:
        registry.write(args.metrics)
        logger.info("metrics written to %s", args.metrics)


def _run_optimize(args: argparse.Namespace, problem, network) -> int:
    controller = None
    if args.deadline is not None or args.checkpoint is not None:
        controller = RunController(deadline_s=args.deadline,
                                   checkpoint_path=args.checkpoint)
    resume_from = args.resume
    settings = HeuristicSettings(strategy=args.strategy,
                                 search_budget=args.search_budget,
                                 seed=args.seed,
                                 width_method=args.width_method,
                                 engine=args.engine,
                                 prune=args.prune,
                                 warm_start=args.warm_start,
                                 controller=controller)
    robust_config = _robust_config(args, getattr(args, "robust", None))
    if robust_config is not None:
        from repro.errors import OptimizationError

        if problem.n_vth > 1:
            raise OptimizationError(
                "--robust supports a single Vth (drop --n-vth)")
        if args.fallback:
            raise OptimizationError(
                "--robust and --fallback are mutually exclusive; the "
                "robust objective has its own degradation labeling")
    try:
        if robust_config is not None:
            from repro.robust import optimize_robust

            result = optimize_robust(problem, robust_config,
                                     settings=settings,
                                     resume_from=resume_from)
        elif problem.n_vth > 1:
            from repro.optimize.multivth import MultiVthSettings, \
                optimize_multi_vth

            result = optimize_multi_vth(
                problem,
                settings=MultiVthSettings(single=settings,
                                          controller=controller),
                resume_from=resume_from)
        elif args.fallback:
            from repro.runtime.fallback import optimize_with_fallback

            result = optimize_with_fallback(problem, settings=settings,
                                            resume_from=resume_from)
        else:
            result = optimize_joint(problem, settings=settings,
                                    resume_from=resume_from)
    except DeadlineExceeded as error:
        logger.error("error: %s", error)
        checkpoint = resume_from or args.checkpoint
        if checkpoint:
            logger.error("partial search state saved to %s; re-run "
                         "with --resume %s to continue",
                         checkpoint, checkpoint)
        return 2

    degradation = getattr(result, "degradation", None)
    if degradation:
        stage = degradation.get("stage")
        logger.warning("warning: degraded result (recovered via stage "
                       "%r); see the JSON 'degradation' field for "
                       "diagnostics", stage)

    rows = [["joint",
             "/".join(f"{v:.2f}" for v in result.design.distinct_vdds()),
             "/".join(f"{v * 1000:.0f}"
                      for v in result.design.distinct_vths()),
             format_energy(result.energy.static),
             format_energy(result.energy.dynamic),
             format_energy(result.total_energy),
             f"{result.timing.critical_delay / NS:.3f}"]]
    payload = {"joint": result.summary()}
    if robust_config is not None:
        payload["robust"] = result.details.get("robust")
    if degradation:
        payload["degradation"] = {key: value for key, value
                                  in degradation.items()}
    if args.baseline:
        baseline = optimize_fixed_vth(problem)
        rows.insert(0, ["baseline (Vth=700mV)",
                        f"{baseline.design.vdd:.2f}", "700",
                        format_energy(baseline.energy.static),
                        format_energy(baseline.energy.dynamic),
                        format_energy(baseline.total_energy),
                        f"{baseline.timing.critical_delay / NS:.3f}"])
        payload["baseline"] = baseline.summary()
        payload["savings"] = baseline.total_energy / result.total_energy

    if args.save_design:
        from repro.optimize.persist import save_design

        saved_path = save_design(result, args.save_design)
        payload["design_file"] = str(saved_path)

    if args.json:
        print(json.dumps(payload, default=str, indent=2))
    else:
        print(format_table(
            headers=["design", "Vdd (V)", "Vth (mV)", "static",
                     "dynamic", "total", "delay (ns)"],
            rows=rows,
            title=f"{network.name} @ {args.frequency:.0f} MHz, "
                  f"a = {args.activity}"))
        if args.baseline:
            print(f"\nsavings: {payload['savings']:.1f}x")
    return 0


def _cmd_robust(args: argparse.Namespace) -> int:
    """Robust optimization / robust-vs-nominal-vs-worst-case report."""
    from repro.robust import compare_robust, optimize_robust

    tech = _resolve_technology(args)
    network = _resolve_network(args.circuit)
    profile = uniform_profile(network, probability=args.probability,
                              density=args.activity)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=args.frequency * MHZ)
    config = _robust_config(args, args.measure)
    settings = HeuristicSettings(strategy=args.strategy,
                                 search_budget=args.search_budget,
                                 seed=args.seed,
                                 engine=args.engine,
                                 grid_vdd=args.grid_vdd,
                                 grid_vth=args.grid_vth)
    plan = _parallel_plan(args)
    with contextlib.ExitStack() as stack:
        if plan is not None:
            stack.enter_context(use_parallel(plan))
        if args.compare:
            report = compare_robust(problem, config, settings=settings,
                                    worst_tolerance=args.worst_tolerance)
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True))
                return 0
            rows = []
            for name in ("nominal", "worst_case", "robust"):
                leg = report["legs"][name]
                verification = leg["verification"]
                rows.append([
                    name, f"{leg['vdd']:.3f}", f"{leg['vth'] * 1000:.0f}",
                    format_energy(leg["nominal_energy"]),
                    format_energy(verification[config.measure])
                    if verification[config.measure] is not None else "-",
                    f"{verification['timing_yield']:.1%}"
                    f" [{verification['yield_low']:.1%},"
                    f" {verification['yield_high']:.1%}]",
                    "yes" if leg["meets_yield"] else "NO",
                ])
            print(format_table(
                headers=["design", "Vdd (V)", "Vth (mV)", "E nominal",
                         f"E {config.measure}", "yield (95% CI)",
                         f">= {config.yield_target:.0%}"],
                rows=rows,
                title=f"{network.name} @ {args.frequency:.0f} MHz — "
                      f"fresh-seed verification "
                      f"(seed {report['verify_seed']}, "
                      f"{report['verify_samples']} samples; worst-case "
                      f"tolerance {report['worst_tolerance']:.3f})"))
            return 0
        result = optimize_robust(problem, config, settings=settings)
        robust = result.details["robust"]
        payload = {"robust": robust,
                   "design": result.summary()}
        degradation = getattr(result, "degradation", None)
        if degradation:
            payload["degradation"] = dict(degradation)
            logger.warning("warning: degraded robust result; see the "
                           "'degradation' field")
        if args.json:
            print(json.dumps(payload, default=str, indent=2))
            return 0
        verification = robust["verification"]
        print(format_table(
            headers=["Vdd (V)", "Vth (mV)", f"E {config.measure}",
                     "yield (95% CI)", "corners", "culled", "quarantined"],
            rows=[[f"{result.design.vdd:.3f}",
                   f"{result.design.vth * 1000:.0f}",
                   format_energy(verification[config.measure])
                   if verification[config.measure] is not None else "-",
                   f"{verification['timing_yield']:.1%}"
                   f" [{verification['yield_low']:.1%},"
                   f" {verification['yield_high']:.1%}]",
                   str(robust["corners"]), str(robust["corners_culled"]),
                   str(robust["samples_quarantined"])]],
            title=f"{network.name} robust optimum "
                  f"({config.measure}, yield >= "
                  f"{config.yield_target:.0%}; verified at seed "
                  f"{verification['seed']})"))
        return 0 if not degradation else 1


def _cmd_info(args: argparse.Namespace) -> int:
    network = _resolve_network(args.circuit)
    stats = network_stats(network)
    for key, value in stats.as_dict().items():
        print(f"{key:12s} {value}")
    print(f"{'gate mix':12s} "
          + ", ".join(f"{kind}:{count}"
                      for kind, count in stats.gate_type_counts))
    issues = lint(network)
    if issues:
        print(f"lint: {len(issues)} issue(s)")
        for issue in issues[:10]:
            print(f"  {issue}")
    else:
        print("lint: clean")
    return 0


def _cmd_activity(args: argparse.Namespace) -> int:
    network = _resolve_network(args.circuit)
    profile = uniform_profile(network, probability=args.probability,
                              density=args.activity)
    estimate = estimate_activity(network, profile)
    columns = ["node", "Najm D"]
    exact = None
    measured = None
    if args.compare:
        from repro.activity.exact import estimate_activity_exact

        exact = estimate_activity_exact(network, profile)
        measured = simulate_activity(network, profile, cycles=args.cycles,
                                     seed=0)
        columns += ["exact D", "MC D"]
    rows = []
    for name in network.outputs:
        row = [name, f"{estimate.density(name):.4f}"]
        if exact is not None and measured is not None:
            row += [f"{exact.density(name):.4f}",
                    f"{measured.density(name):.4f}"]
        rows.append(row)
    print(format_table(headers=columns, rows=rows,
                       title=f"Output activities of {network.name}"))
    return 0


def _cmd_decks(args: argparse.Namespace) -> int:
    for name in deck_names():
        tech = deck(name)
        print(f"{name:18s} F={tech.feature_size * 1e6:.2f} um  "
              f"Idsat={tech.idsat_reference * 1e6:.0f} uA/sq  "
              f"S={tech.subthreshold_slope * 1000:.0f} mV/dec")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    argv: list = []
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.retries != 2:
        argv += ["--retries", str(args.retries)]
    if args.task_timeout is not None:
        argv += ["--task-timeout", str(args.task_timeout)]
    return runner.main(argv + (args.names or ["all"]))


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_trace_report

    print(render_trace_report(args.trace_file, top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.service import OptimizationService

    service = OptimizationService(args.root, capacity=args.capacity,
                                  pool_jobs=args.jobs,
                                  retries=args.retries,
                                  cache_entries=args.cache_entries,
                                  poll_s=args.poll)
    logger.info("serving from %s (capacity %d, pool jobs %d)",
                args.root, args.capacity, args.jobs)
    finished = service.run(max_jobs=args.max_jobs,
                           max_idle_s=args.max_idle)
    logger.info("daemon exiting after %d job(s)", finished)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import client
    from repro.serve.jobs import JobRequest

    request = JobRequest(circuit=args.circuit, deck=args.deck,
                         frequency_mhz=args.frequency,
                         activity=args.activity,
                         probability=args.probability,
                         n_vth=args.n_vth, strategy=args.strategy,
                         search_budget=args.search_budget, seed=args.seed,
                         engine=args.engine,
                         width_method=args.width_method,
                         grid_vdd=args.grid_vdd, grid_vth=args.grid_vth,
                         fallback=args.fallback, priority=args.priority,
                         deadline_s=args.job_deadline,
                         robust=args.robust,
                         yield_target=args.yield_target,
                         sigma_within=args.sigma_within,
                         sigma_die=args.sigma_die,
                         robust_samples=args.samples,
                         robust_cull_samples=args.cull_samples,
                         robust_seed=args.robust_seed,
                         robust_margin_z=args.yield_margin_z)
    ticket = client.submit_request(args.root, request)
    logger.info("request spooled as %s", ticket)
    try:
        reply = client.wait_for_reply(args.root, ticket,
                                      timeout_s=args.timeout)
    except DeadlineExceeded as error:
        logger.error("error: %s", error)
        return 2
    if reply.get("status") != "accepted":
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 1
    job_id = reply["job_id"]
    if not args.wait:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    try:
        status = client.wait_for_terminal(args.root, job_id,
                                          timeout_s=args.timeout)
    except DeadlineExceeded as error:
        logger.error("error: %s", error)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status.get("state") in ("DONE", "DEGRADED") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import client

    if args.cancel:
        client.request_cancel(args.root, args.cancel)
        print(f"cancel requested for {args.cancel}")
        return 0
    rows = client.list_jobs(args.root)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no jobs")
        return 0
    print(format_table(
        headers=["job", "circuit", "state", "prio", "digest"],
        rows=[[row["job_id"], row["circuit"], row["state"],
               str(row["priority"]), row["digest"]] for row in rows],
        title=f"jobs @ {args.root}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Device-circuit optimization for minimal CMOS energy "
                    "(Pant/De/Chatterjee, DAC 1997).")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise repro.* log verbosity (repeatable)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="lower repro.* log verbosity (repeatable)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    optimize = subparsers.add_parser(
        "optimize", help="jointly optimize a circuit")
    optimize.add_argument("circuit",
                          help="benchmark name or .bench file path")
    _add_common(optimize)
    optimize.add_argument("--baseline", action="store_true",
                          help="also run the fixed-Vth=700mV baseline")
    optimize.add_argument("--strategy",
                          choices=STRATEGY_CHOICES + ("paper",),
                          default="grid",
                          help="the (Vdd, Vth) search strategy: the "
                               "exhaustive grid, an adaptive sampler "
                               "(random, surrogate, hyperband), or the "
                               "paper's nested bisection")
    optimize.add_argument("--search-budget", type=int, default=None,
                          metavar="N",
                          help="adaptive strategies: sampling-phase "
                               "evaluation budget (default: the "
                               "strategy's own)")
    optimize.add_argument("--seed", type=int, default=0,
                          help="adaptive strategies: RNG seed for the "
                               "proposal sequence (default 0)")
    optimize.add_argument("--n-vth", type=int, default=1,
                          help="number of distinct threshold voltages")
    optimize.add_argument("--activity-method", choices=("najm", "exact"),
                          default="najm")
    optimize.add_argument("--register-margin", type=float, default=0.0,
                          help="total register margin in ps "
                               "(.bench inputs only)")
    optimize.add_argument("--json", action="store_true",
                          help="emit a JSON summary")
    optimize.add_argument("--save-design", default=None, metavar="PATH",
                          help="write the optimized design point to a "
                               "JSON file")
    optimize.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget; exceeding it aborts "
                               "with exit code 2 (resumable if "
                               "checkpointing)")
    optimize.add_argument("--checkpoint", default=None, metavar="PATH",
                          help="checkpoint the search state to PATH as "
                               "it runs")
    optimize.add_argument("--resume", default=None, metavar="PATH",
                          help="resume an interrupted search from (and "
                               "keep checkpointing to) PATH")
    optimize.add_argument("--fallback", action="store_true",
                          help="on failure, walk the strategy fallback "
                               "chain (grid -> paper -> relaxed clock) "
                               "and return a labeled degraded result")
    optimize.add_argument("--width-method",
                          choices=("closed_form", "bisect"),
                          default="closed_form",
                          help="Procedure 2 width sizing: the closed-form "
                               "solve or the paper's bisection")
    optimize.add_argument("--engine",
                          choices=ENGINE_CHOICES,
                          default="auto",
                          help="evaluation engine: the scalar reference, "
                               "the vectorized NumPy fastpath, the "
                               "delta-evaluation engine, or auto "
                               "(honor $REPRO_ENGINE, default scalar)")
    optimize.add_argument("--prune", action="store_true",
                          help="grid strategy: skip (Vdd, Vth) cells whose "
                               "closed-form energy lower bound already "
                               "exceeds a probed feasible design; the "
                               "argmin is provably unchanged")
    optimize.add_argument("--warm-start", action="store_true",
                          help="bisect sizing: seed each cell's width "
                               "brackets from the previous feasible "
                               "solution (serial grid only)")
    optimize.add_argument("--robust", choices=("mean", "p95", "cvar"),
                          default=None, metavar="MEASURE",
                          help="optimize a statistical risk measure "
                               "(mean, p95, cvar) of the energy under "
                               "Vth variation instead of the nominal "
                               "energy, with --yield-target as the "
                               "feasibility constraint")
    _add_robust_params(optimize)
    optimize.add_argument("--trace", default=None, metavar="PATH",
                          help="record a JSONL span trace of the search "
                               "to PATH")
    optimize.add_argument("--metrics", default=None, metavar="PATH",
                          help="write a JSON counter/histogram snapshot "
                               "to PATH")
    optimize.add_argument("--profile", action="store_true",
                          help="time the hot seams (STA, energy, width "
                               "sizing...) into duration histograms")
    _add_parallel(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    robust = subparsers.add_parser(
        "robust",
        help="variation-aware robust optimization and the "
             "robust-vs-nominal-vs-worst-case comparison report")
    robust.add_argument("circuit",
                        help="benchmark name or .bench file path")
    _add_common(robust)
    robust.add_argument("--measure", choices=("mean", "p95", "cvar"),
                        default="p95",
                        help="risk measure to minimize (default p95)")
    _add_robust_params(robust)
    robust.add_argument("--compare", action="store_true",
                        help="also optimize the nominal and worst-case "
                             "(Figure 2a) objectives and verify all "
                             "three designs on the same fresh samples")
    robust.add_argument("--worst-tolerance", type=float, default=None,
                        metavar="TOL",
                        help="worst-case leg's Vth tolerance (default: "
                             "+-3 sigma of the statistical model)")
    robust.add_argument("--strategy",
                        choices=STRATEGY_CHOICES + ("paper",),
                        default="grid")
    robust.add_argument("--search-budget", type=int, default=None,
                        metavar="N")
    robust.add_argument("--seed", type=int, default=0,
                        help="adaptive strategies: proposal RNG seed")
    robust.add_argument("--engine", choices=ENGINE_CHOICES, default="auto")
    robust.add_argument("--grid-vdd", type=int, default=15)
    robust.add_argument("--grid-vth", type=int, default=13)
    robust.add_argument("--json", action="store_true",
                        help="emit a JSON report")
    _add_parallel(robust)
    robust.set_defaults(handler=_cmd_robust)

    info = subparsers.add_parser("info", help="show circuit statistics")
    info.add_argument("circuit")
    info.set_defaults(handler=_cmd_info)

    activity = subparsers.add_parser(
        "activity", help="estimate switching activities")
    activity.add_argument("circuit")
    _add_common(activity)
    activity.add_argument("--compare", action="store_true",
                          help="also run exact + Monte-Carlo estimates")
    activity.add_argument("--cycles", type=int, default=20000)
    activity.set_defaults(handler=_cmd_activity)

    decks = subparsers.add_parser("decks",
                                  help="list built-in technology decks")
    decks.set_defaults(handler=_cmd_decks)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables/figures")
    experiments.add_argument("names", nargs="*", default=[])
    _add_parallel(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    serve = subparsers.add_parser(
        "serve",
        help="run the resilient optimization-service daemon")
    serve.add_argument("root", help="service root directory (journal, "
                                    "spool, cache, results)")
    serve.add_argument("--capacity", type=int, default=16,
                       help="bounded queue size; beyond it submissions "
                            "are rejected as ServiceOverloaded "
                            "(default 16)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="supervised pool workers per batch "
                            "(default 1 = in-process)")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="task retries before quarantine (default 2)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="result-cache LRU size cap (default 256)")
    serve.add_argument("--max-jobs", type=int, default=None, metavar="N",
                       help="exit after finishing N jobs (default: serve "
                            "forever)")
    serve.add_argument("--max-idle", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after this long with no activity "
                            "(default: serve forever)")
    serve.add_argument("--poll", type=float, default=0.05,
                       metavar="SECONDS",
                       help="spool/control poll interval (default 0.05)")
    serve.set_defaults(handler=_cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit one job to a service root")
    submit.add_argument("root", help="service root directory")
    submit.add_argument("circuit", help="benchmark circuit name")
    _add_common(submit)
    submit.add_argument("--strategy",
                        choices=STRATEGY_CHOICES + ("paper",),
                        default="grid")
    submit.add_argument("--search-budget", type=int, default=None,
                        metavar="N",
                        help="adaptive strategies: sampling-phase "
                             "evaluation budget")
    submit.add_argument("--seed", type=int, default=0,
                        help="adaptive strategies: proposal RNG seed")
    submit.add_argument("--n-vth", type=int, default=1)
    submit.add_argument("--engine", choices=ENGINE_CHOICES, default="auto")
    submit.add_argument("--width-method",
                        choices=("closed_form", "bisect"),
                        default="closed_form")
    submit.add_argument("--grid-vdd", type=int, default=15)
    submit.add_argument("--grid-vth", type=int, default=13)
    submit.add_argument("--robust", choices=("mean", "p95", "cvar"),
                        default=None, metavar="MEASURE",
                        help="submit a robust job minimizing this risk "
                             "measure under Vth variation")
    _add_robust_params(submit)
    submit.add_argument("--fallback", action="store_true",
                        help="solve through the fallback chain; degraded "
                             "results surface labeled in job status")
    submit.add_argument("--priority", type=int, default=0,
                        help="admission priority (higher runs first)")
    submit.add_argument("--job-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget enforced by the "
                             "daemon")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal "
                             "state and print its status")
    submit.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="max seconds to wait for the daemon "
                             "(default 300)")
    submit.set_defaults(handler=_cmd_submit)

    jobs = subparsers.add_parser(
        "jobs", help="list (or cancel) jobs at a service root")
    jobs.add_argument("root", help="service root directory")
    jobs.add_argument("--json", action="store_true",
                      help="emit machine-readable rows")
    jobs.add_argument("--cancel", default=None, metavar="JOB_ID",
                      help="request cooperative cancellation of a job")
    jobs.set_defaults(handler=_cmd_jobs)

    trace_report = subparsers.add_parser(
        "trace-report",
        help="summarize a recorded --trace file (top spans, counters)")
    trace_report.add_argument("trace_file", help="JSONL trace file path")
    trace_report.add_argument("--top", type=int, default=10,
                              help="number of span rows to show "
                                   "(default 10)")
    trace_report.set_defaults(handler=_cmd_trace_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        return args.handler(args)
    except ReproError as error:
        logger.error("error: %s", error)
        return 1
    except BrokenPipeError:
        # Piping long output into e.g. `head` closes stdout early;
        # redirect to devnull so the interpreter's exit flush does not
        # raise a second time, and exit like a well-behaved filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
