"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all :mod:`repro` errors."""


class NetlistError(ReproError):
    """A logic network is malformed (cycle, dangling net, bad gate...)."""


class BenchParseError(NetlistError):
    """An ISCAS ``.bench`` file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class TechnologyError(ReproError):
    """A technology description is inconsistent or out of model range."""


class TimingError(ReproError):
    """Timing analysis failed (e.g. no budget assignment possible)."""


class InfeasibleError(ReproError):
    """No design point satisfies the delay constraint.

    Raised when even the fastest corner of the search space (maximum
    ``Vdd``, maximum width, best ``Vth``) cannot meet the requested cycle
    time for the given network.
    """


class OptimizationError(ReproError):
    """The optimizer failed for a reason other than infeasibility."""


class ActivityError(ReproError):
    """Activity/transition-density estimation was given invalid inputs."""


# --- resilient-runtime taxonomy (see :mod:`repro.runtime`) ---------------


class RuntimeControlError(ReproError):
    """Base class for run-control conditions (deadline, cancellation)."""


class DeadlineExceeded(RuntimeControlError):
    """The wall-clock deadline of a :class:`~repro.runtime.RunController`
    expired before the run completed.

    Long searches flush their checkpoint before raising, so the run can
    be resumed with ``resume_from=`` / ``--resume``.
    """


class RunCancelled(RuntimeControlError):
    """The run was cooperatively cancelled via ``RunController.cancel()``."""


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, truncated, or belongs to a
    different search (mismatched network/strategy fingerprint)."""


class FaultInjectedError(ReproError):
    """An error deliberately raised by the fault-injection harness
    (:mod:`repro.runtime.faults`); never raised in production runs."""


# --- serving taxonomy (see :mod:`repro.serve`) ----------------------------


class ServiceError(ReproError):
    """Base class for optimization-service failures (:mod:`repro.serve`)."""


class ServiceOverloaded(ServiceError):
    """The service's bounded job queue is full; the submission was
    rejected by admission control.

    Rejection is explicit and labeled — the submitter receives a
    ``{"status": "rejected", "error": "ServiceOverloaded"}`` reply
    instead of unbounded queue growth. ``capacity`` and ``queued``
    record the queue state at rejection time.
    """

    def __init__(self, message: str, capacity: int = 0, queued: int = 0):
        self.capacity = capacity
        self.queued = queued
        super().__init__(message)


class JournalError(ServiceError):
    """The job journal is unusable beyond tail repair (unreadable file,
    unwritable directory). Torn *tails* never raise — they are truncated
    with a warning on daemon startup (see
    :class:`repro.serve.journal.JobJournal`)."""


class JobStateError(ServiceError):
    """An invalid job lifecycle transition was attempted (e.g. resuming
    a job already in a terminal state)."""


class FallbackExhaustedError(OptimizationError):
    """Every strategy in a fallback chain failed.

    Carries the per-stage diagnostics so callers can report what was
    attempted; see :mod:`repro.runtime.fallback`.
    """

    def __init__(self, message: str, attempts: tuple = ()):  # noqa: D401
        self.attempts = tuple(attempts)
        super().__init__(message)
