"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all :mod:`repro` errors."""


class NetlistError(ReproError):
    """A logic network is malformed (cycle, dangling net, bad gate...)."""


class BenchParseError(NetlistError):
    """An ISCAS ``.bench`` file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class TechnologyError(ReproError):
    """A technology description is inconsistent or out of model range."""


class TimingError(ReproError):
    """Timing analysis failed (e.g. no budget assignment possible)."""


class InfeasibleError(ReproError):
    """No design point satisfies the delay constraint.

    Raised when even the fastest corner of the search space (maximum
    ``Vdd``, maximum width, best ``Vth``) cannot meet the requested cycle
    time for the given network.
    """


class OptimizationError(ReproError):
    """The optimizer failed for a reason other than infeasibility."""


class ActivityError(ReproError):
    """Activity/transition-density estimation was given invalid inputs."""
