"""Shared per-circuit evaluation context.

The delay model (Appendix A.2), the energy model (Appendix A.1) and every
optimizer all evaluate the same gate-level quantities — fanin counts,
per-unit-width capacitances, interconnect branches, activities. The
:class:`CircuitContext` precomputes them once per (technology, network,
activity profile, wire model) so that the inner loops of Procedure 2,
which evaluate the circuit ``O(M^3)`` times, touch only flat tuples.

Branch data for a gate's output net is aligned with
``network.fanouts(name)``; sink-less primary outputs carry one *boundary*
branch whose receiver is modelled as a unit-width 2-input gate at the
module port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.activity.profiles import InputProfile
from repro.activity.transition_density import ActivityEstimate, estimate_activity
from repro.errors import ReproError
from repro.interconnect.parasitics import (
    NetParasitics,
    WireModel,
    network_parasitics,
)
from repro.interconnect.rent import RentParameters
from repro.netlist.network import LogicNetwork
from repro.technology.capacitance import gate_capacitances
from repro.technology.process import Technology


@dataclass(frozen=True)
class GateInfo:
    """Precomputed per-gate constants (everything width-independent)."""

    name: str
    fanin_count: int
    #: The paper's f_oi (boundary load counts as one fanout).
    fanout_count: int
    #: Output-node parasitic capacitance per unit of this gate's width (F):
    #: C_PD + (fanin - 1) * C_mi, beta-scaled.
    self_cap: float
    #: Input capacitance this gate presents per unit of its width (F).
    input_cap: float
    #: Activity factor a_i (transitions/cycle) of the output node.
    activity: float
    #: Names of driven gates ('' marks the boundary branch of a PO).
    fanout_names: Tuple[str, ...]
    #: Input capacitance per unit width of each fanout gate (F).
    fanout_input_caps: Tuple[float, ...]
    #: Interconnect branch capacitances C_INTij (F).
    branch_caps: Tuple[float, ...]
    #: Interconnect branch resistances R_INTij (ohm).
    branch_resistances: Tuple[float, ...]
    #: Branch time-of-flight delays (s).
    branch_flights: Tuple[float, ...]
    #: Fanin gate names (empty for primary inputs).
    fanin_names: Tuple[str, ...]

    @property
    def wire_cap(self) -> float:
        return sum(self.branch_caps)


class CircuitContext:
    """Precomputed evaluation state for one (network, tech, profile) triple."""

    #: Width assumed for the receiver of a boundary (primary output) branch.
    BOUNDARY_WIDTH = 1.0

    def __init__(self, tech: Technology, network: LogicNetwork,
                 profile: InputProfile,
                 rent: RentParameters | None = None,
                 wire_model: WireModel = WireModel.STOCHASTIC_MEAN,
                 wire_seed: int = 0,
                 activity: ActivityEstimate | None = None,
                 parasitics: Mapping[str, NetParasitics] | None = None):
        self.tech = tech
        self.network = network
        self.profile = profile
        self.activity = activity or estimate_activity(network, profile)
        if parasitics is None:
            parasitics = network_parasitics(tech, network, rent=rent,
                                            model=wire_model, seed=wire_seed)
        self.parasitics = dict(parasitics)
        self._info: Dict[str, GateInfo] = {}
        self._build()
        #: Logic gates in topological order (inputs excluded).
        self.gates: Tuple[str, ...] = network.logic_gates
        #: Logic gates in reverse topological order (outputs first).
        self.gates_reversed: Tuple[str, ...] = tuple(reversed(self.gates))

    def _build(self) -> None:
        network = self.network
        tech = self.tech
        boundary_input_cap = gate_capacitances(tech, 2).input_cap
        for name in network.topological_order():
            gate = network.gate(name)
            fanouts = network.fanouts(name)
            parasitic = self.parasitics.get(name)
            if parasitic is None:
                raise ReproError(f"no parasitics supplied for net {name!r}")
            fanout_names: Tuple[str, ...]
            fanout_caps: Tuple[float, ...]
            if fanouts:
                fanout_names = fanouts
                fanout_caps = tuple(
                    gate_capacitances(
                        tech, network.gate(sink).fanin_count).input_cap
                    for sink in fanouts)
            else:
                # Sink-less primary output: one boundary branch.
                fanout_names = ("",)
                fanout_caps = (boundary_input_cap,)
            if len(parasitic.branch_caps) != len(fanout_names):
                raise ReproError(
                    f"net {name!r}: {len(parasitic.branch_caps)} parasitic "
                    f"branches for {len(fanout_names)} fanouts")
            fanin_count = max(gate.fanin_count, 1)
            caps = gate_capacitances(tech, fanin_count)
            self._info[name] = GateInfo(
                name=name,
                fanin_count=fanin_count,
                fanout_count=network.fanout_count(name),
                self_cap=caps.self_cap,
                input_cap=caps.input_cap,
                activity=self.activity.density(name),
                fanout_names=fanout_names,
                fanout_input_caps=fanout_caps,
                branch_caps=parasitic.branch_caps,
                branch_resistances=parasitic.branch_resistances,
                branch_flights=parasitic.branch_flight_times,
                fanin_names=gate.fanins,
            )

    def info(self, name: str) -> GateInfo:
        try:
            return self._info[name]
        except KeyError:
            raise ReproError(
                f"no gate {name!r} in context for {self.network.name!r}"
            ) from None

    def output_load(self, name: str, widths: Mapping[str, float]) -> float:
        """Total switched capacitance at the output of ``name`` (F).

        ``widths`` maps logic-gate names to width multipliers; boundary
        branches use :attr:`BOUNDARY_WIDTH`, primary-input *drivers* are
        not needed (inputs have no output load of their own in the energy
        sums, but their nets do drive gates — callers pass input names
        too when they need input-net loads, with width 1).
        """
        info = self.info(name)
        load = widths.get(name, 1.0) * info.self_cap + info.wire_cap
        for sink, cap_per_width in zip(info.fanout_names,
                                       info.fanout_input_caps):
            sink_width = self.BOUNDARY_WIDTH if sink == "" \
                else widths.get(sink, 1.0)
            load += sink_width * cap_per_width
        return load

    def uniform_widths(self, width: float = 1.0) -> Dict[str, float]:
        """A width map assigning ``width`` to every logic gate."""
        if width < self.tech.width_min or width > self.tech.width_max:
            raise ReproError(
                f"width {width} outside technology range "
                f"[{self.tech.width_min}, {self.tech.width_max}]")
        return {name: width for name in self.gates}
