"""§5 comparison: the Procedure 1+2 heuristic vs simulated annealing.

"We ran a simulated annealing based algorithm on the benchmark circuits.
Though we expect simulated annealing to return a near-optimal solution,
in most cases, we find that it does not perform as well as the proposed
heuristic. This is because the size of the optimization problem is too
large for annealing to converge in a practical amount of time."

Each row pits the two optimizers on the same problem at a comparable (or
far larger, for annealing) evaluation budget; expected shape: the
heuristic's energy is lower on every circuit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_energy, format_table
from repro.errors import InfeasibleError
from repro.experiments.common import ExperimentConfig, build_problem
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.heuristic import HeuristicSettings, optimize_joint


@dataclass(frozen=True)
class AnnealingComparisonRow:
    """One circuit's heuristic-vs-annealing result."""

    circuit: str
    activity: float
    heuristic_energy: float
    heuristic_seconds: float
    heuristic_evaluations: int
    annealing_energy: float | None
    annealing_seconds: float
    annealing_evaluations: int

    @property
    def annealing_excess(self) -> float | None:
        """annealing / heuristic energy (None if annealing failed)."""
        if self.annealing_energy is None:
            return None
        return self.annealing_energy / self.heuristic_energy


def run_annealing_comparison(circuits: Tuple[str, ...] = ("s298", "s386"),
                             activity: float = 0.1,
                             config: ExperimentConfig | None = None,
                             heuristic_settings: HeuristicSettings | None = None,
                             annealing_settings: AnnealingSettings | None = None
                             ) -> Tuple[AnnealingComparisonRow, ...]:
    """Run both optimizers on each circuit and collect the comparison."""
    config = config or ExperimentConfig()
    annealing_settings = annealing_settings or AnnealingSettings()
    rows: List[AnnealingComparisonRow] = []
    for circuit in circuits:
        problem = build_problem(circuit, activity,
                                frequency=config.frequency,
                                probability=config.probability)
        start = time.perf_counter()
        heuristic = optimize_joint(problem, settings=heuristic_settings)
        heuristic_seconds = time.perf_counter() - start

        start = time.perf_counter()
        try:
            annealed = optimize_annealing(problem,
                                          settings=annealing_settings)
            annealing_energy: float | None = annealed.total_energy
            annealing_evaluations = annealed.evaluations
        except InfeasibleError:
            annealing_energy = None
            annealing_evaluations = (annealing_settings.passes
                                     * annealing_settings.iterations_per_pass)
        annealing_seconds = time.perf_counter() - start

        rows.append(AnnealingComparisonRow(
            circuit=circuit, activity=activity,
            heuristic_energy=heuristic.total_energy,
            heuristic_seconds=heuristic_seconds,
            heuristic_evaluations=heuristic.evaluations,
            annealing_energy=annealing_energy,
            annealing_seconds=annealing_seconds,
            annealing_evaluations=annealing_evaluations))
    return tuple(rows)


def format_annealing_comparison(rows: Tuple[AnnealingComparisonRow, ...]) -> str:
    """Render the comparison as aligned text."""
    def excess_cell(row: AnnealingComparisonRow) -> str:
        excess = row.annealing_excess
        return "no feasible state" if excess is None else f"{excess:.2f}x"

    return format_table(
        headers=["Circuit", "Heuristic E", "Heur. s", "Annealing E",
                 "Anneal s", "Anneal/Heur"],
        rows=[[row.circuit, format_energy(row.heuristic_energy),
               f"{row.heuristic_seconds:.2f}",
               "-" if row.annealing_energy is None
               else format_energy(row.annealing_energy),
               f"{row.annealing_seconds:.2f}",
               excess_cell(row)]
              for row in rows],
        title="§5 — heuristic vs multiple-pass simulated annealing")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_annealing_comparison(run_annealing_comparison()))


if __name__ == "__main__":  # pragma: no cover
    main()
