"""Figure 2(a): power savings vs worst-case threshold-voltage tolerance.

"We performed experiments to determine the impact of the threshold
voltage variation due to process fluctuations on the amount of power
savings possible. ... The worst case power under the stipulated Vts
variation is used to compute the power savings over the benchmark of
Table 1 for different Vts tolerance values. This data is shown in
Figure 2(a) for the circuit s298."

Expected shape: savings decay monotonically as the tolerance grows — the
optimizer must size against slow devices while paying for leaky ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.sweeps import sweep_vth_tolerance
from repro.experiments.common import ExperimentConfig, build_problem
from repro.optimize.heuristic import HeuristicSettings

#: The paper sweeps the tolerance on s298; we sample 0–30 %.
DEFAULT_TOLERANCES: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20,
                                         0.25, 0.30)
DEFAULT_CIRCUIT = "s298"
DEFAULT_ACTIVITY = 0.1


@dataclass(frozen=True)
class Figure2aPoint:
    """One sample of the Figure 2(a) curve."""

    tolerance: float
    savings: float
    vdd: float
    vth_nominal: float


def run_figure2a(circuit: str = DEFAULT_CIRCUIT,
                 activity: float = DEFAULT_ACTIVITY,
                 tolerances: Sequence[float] = DEFAULT_TOLERANCES,
                 config: ExperimentConfig | None = None,
                 settings: HeuristicSettings | None = None
                 ) -> Tuple[Figure2aPoint, ...]:
    """Regenerate the Figure 2(a) series."""
    config = config or ExperimentConfig()
    problem = build_problem(circuit, activity, frequency=config.frequency,
                            probability=config.probability)
    sweep = sweep_vth_tolerance(problem, tolerances, settings=settings)
    return tuple(Figure2aPoint(tolerance=point.tolerance,
                               savings=point.savings,
                               vdd=point.vdd,
                               vth_nominal=point.vth_nominal)
                 for point in sweep)


def format_figure2a(points: Tuple[Figure2aPoint, ...],
                    circuit: str = DEFAULT_CIRCUIT) -> str:
    """Render the Figure 2(a) series as aligned text."""
    return format_table(
        headers=["Vth tolerance (%)", "Power savings", "Vdd (V)",
                 "nominal Vth (V)"],
        rows=[[f"{point.tolerance * 100:.0f}", f"{point.savings:.2f}x",
               f"{point.vdd:.2f}", f"{point.vth_nominal:.3f}"]
              for point in points],
        title=f"Figure 2(a) — savings vs worst-case Vth variation ({circuit})")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure2a(run_figure2a()))


if __name__ == "__main__":  # pragma: no cover
    main()
