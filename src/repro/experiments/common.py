"""Shared configuration for all paper experiments.

The paper's evaluation (§5) runs every circuit at a 300 MHz cycle-time
constraint with uniform input activities; Tables 1 and 2 report two
activity levels per circuit. :class:`ExperimentConfig` pins those choices
(and the technology deck) in one place so every table/figure/bench uses
identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple

from repro.activity.profiles import uniform_profile
from repro.netlist.benchmarks import PAPER_CIRCUITS, benchmark_circuit
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


@dataclass(frozen=True)
class ExperimentConfig:
    """The evaluation conditions of §5."""

    #: Required clock frequency (Hz). The paper: 300 MHz.
    frequency: float = 300.0 * MHZ
    #: Uniform input transition densities reported per circuit.
    activities: Tuple[float, ...] = (0.1, 0.5)
    #: Uniform input signal probability.
    probability: float = 0.5
    #: Benchmark circuits, in the paper's table order.
    circuits: Tuple[str, ...] = PAPER_CIRCUITS
    #: The fixed threshold of the Table 1 baseline (V).
    baseline_vth: float = 0.7

    def with_circuits(self, circuits: Tuple[str, ...]) -> "ExperimentConfig":
        """A copy restricted to ``circuits`` (used by fast benches)."""
        return ExperimentConfig(frequency=self.frequency,
                                activities=self.activities,
                                probability=self.probability,
                                circuits=circuits,
                                baseline_vth=self.baseline_vth)


@lru_cache(maxsize=128)
def build_problem(circuit: str, activity: float,
                  frequency: float = 300.0 * MHZ,
                  probability: float = 0.5,
                  tech: Technology | None = None) -> OptimizationProblem:
    """Cached problem construction (context building dominates setup cost)."""
    technology = tech or Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=probability,
                              density=activity)
    return OptimizationProblem.build(technology, network, profile,
                                     frequency=frequency)
