"""Command-line driver for the full experiment suite.

Usage::

    python -m repro.experiments.runner                 # everything
    python -m repro.experiments.runner table1 fig2a    # a subset
    python -m repro.experiments.runner --list          # enumerate names
    python -m repro.experiments.runner --deadline 900  # wall-clock bound

Prints the regenerated tables/figures to stdout, in the paper's order.

Experiments are *isolated*: a failure in one prints a compact traceback
summary and the suite continues with the rest (``--fail-fast`` restores
abort-on-first-failure). A summary table reports per-experiment status
at the end, and the exit code is nonzero iff anything failed — so a
batch job always produces every result it can, and CI still notices.
``--deadline`` installs an ambient :class:`~repro.runtime.RunController`
for the whole suite; an experiment that exhausts the budget is reported
as timed out and the remaining ones are skipped.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from repro.errors import DeadlineExceeded, RunCancelled
from repro.experiments.annealing_compare import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.figure2a import format_figure2a, run_figure2a
from repro.experiments.figure2b import format_figure2b, run_figure2b
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.runtime.controller import RunController, use_controller

_EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: format_table1(run_table1()),
    "table2": lambda: format_table2(run_table2()),
    "fig2a": lambda: format_figure2a(run_figure2a()),
    "fig2b": lambda: format_figure2b(run_figure2b()),
    "anneal": lambda: format_annealing_comparison(run_annealing_comparison()),
}

#: Traceback frames kept in a failure summary.
_TRACEBACK_FRAMES = 4


@dataclass(frozen=True)
class ExperimentOutcome:
    """Per-experiment result of one suite run."""

    name: str
    #: "ok", "failed", "timeout", or "skipped".
    status: str
    elapsed_s: float
    #: Compact traceback summary ("" when the experiment succeeded).
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _failure_summary(error: BaseException) -> str:
    """The last few traceback frames plus the exception line."""
    frames = traceback.extract_tb(error.__traceback__)
    lines = traceback.format_list(frames[-_TRACEBACK_FRAMES:])
    lines += traceback.format_exception_only(type(error), error)
    return "".join(lines).rstrip()


def run_experiments(names: Sequence[str], fail_fast: bool = False,
                    deadline_s: Optional[float] = None,
                    stream: TextIO | None = None
                    ) -> List[ExperimentOutcome]:
    """Run the named experiments with per-experiment error isolation.

    Returns one :class:`ExperimentOutcome` per requested experiment, in
    order. A failing experiment contributes a ``failed`` outcome (with
    a traceback summary) and the run continues unless ``fail_fast``;
    once a shared ``deadline_s`` budget is exhausted the failing
    experiment is ``timeout`` and the remainder are ``skipped``.
    """
    stream = stream if stream is not None else sys.stdout
    controller = (RunController(deadline_s=deadline_s)
                  if deadline_s is not None else None)
    outcomes: List[ExperimentOutcome] = []
    pending = list(names)
    with use_controller(controller):
        while pending:
            name = pending.pop(0)
            start = time.perf_counter()
            try:
                if controller is not None:
                    controller.check(f"experiment {name}")
                output = _EXPERIMENTS[name]()
            except (DeadlineExceeded, RunCancelled) as error:
                elapsed = time.perf_counter() - start
                status = ("timeout" if isinstance(error, DeadlineExceeded)
                          else "failed")
                outcomes.append(ExperimentOutcome(
                    name=name, status=status, elapsed_s=elapsed,
                    error=str(error)))
                print(f"[{name} {status} after {elapsed:.1f} s: {error}]",
                      file=stream)
                # The budget is shared: nothing left for the rest.
                outcomes.extend(
                    ExperimentOutcome(name=rest, status="skipped",
                                      elapsed_s=0.0,
                                      error="suite deadline exhausted")
                    for rest in pending)
                break
            except Exception as error:  # noqa: BLE001 - isolation boundary
                elapsed = time.perf_counter() - start
                summary = _failure_summary(error)
                outcomes.append(ExperimentOutcome(
                    name=name, status="failed", elapsed_s=elapsed,
                    error=summary))
                print(f"[{name} FAILED after {elapsed:.1f} s]", file=stream)
                print(summary, file=stream)
                print(file=stream)
                if fail_fast:
                    outcomes.extend(
                        ExperimentOutcome(name=rest, status="skipped",
                                          elapsed_s=0.0,
                                          error="--fail-fast")
                        for rest in pending)
                    break
                continue
            elapsed = time.perf_counter() - start
            outcomes.append(ExperimentOutcome(name=name, status="ok",
                                              elapsed_s=elapsed))
            print(output, file=stream)
            print(f"[{name} regenerated in {elapsed:.1f} s]", file=stream)
            print(file=stream)
    return outcomes


def format_summary(outcomes: Sequence[ExperimentOutcome]) -> str:
    """Aligned status table for the end of a suite run."""
    width = max((len(outcome.name) for outcome in outcomes), default=4)
    lines = ["experiment summary:"]
    for outcome in outcomes:
        note = ""
        if outcome.status in ("timeout", "skipped") and outcome.error:
            note = f"  ({outcome.error.splitlines()[0]})"
        lines.append(f"  {outcome.name:<{width}}  {outcome.status:<7}"
                     f"  {outcome.elapsed_s:7.1f} s{note}")
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    lines.append(f"  {len(outcomes)} run, {len(outcomes) - failed} ok, "
                 f"{failed} not ok")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the selected experiments (all by default)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="which experiments to run: "
                             f"{', '.join(_EXPERIMENTS)}, or all "
                             "(default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list the available experiment names and exit")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort the suite on the first failure")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole suite")
    arguments = parser.parse_args(argv)
    if arguments.list:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    selected = list(arguments.experiments or [])
    unknown = [name for name in selected
               if name != "all" and name not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {', '.join(unknown)}; "
                     f"choose from {', '.join([*_EXPERIMENTS, 'all'])}")
    if not selected or "all" in selected:
        selected = list(_EXPERIMENTS)

    outcomes = run_experiments(selected, fail_fast=arguments.fail_fast,
                               deadline_s=arguments.deadline)
    print(format_summary(outcomes))
    return 0 if all(outcome.ok for outcome in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
