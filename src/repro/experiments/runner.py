"""Command-line driver for the full experiment suite.

Usage::

    python -m repro.experiments.runner              # everything
    python -m repro.experiments.runner table1 fig2a # a subset

Prints the regenerated tables/figures to stdout, in the paper's order.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Sequence

from repro.experiments.annealing_compare import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.figure2a import format_figure2a, run_figure2a
from repro.experiments.figure2b import format_figure2b, run_figure2b
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2

_EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: format_table1(run_table1()),
    "table2": lambda: format_table2(run_table2()),
    "fig2a": lambda: format_figure2a(run_figure2a()),
    "fig2b": lambda: format_figure2b(run_figure2b()),
    "anneal": lambda: format_annealing_comparison(run_annealing_comparison()),
}


def main(argv: Sequence[str] | None = None) -> int:
    """Run the selected experiments (all by default)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*_EXPERIMENTS, "all"],
                        default=["all"],
                        help="which experiments to run (default: all)")
    arguments = parser.parse_args(argv)
    selected = list(arguments.experiments)
    if not selected or "all" in selected:
        selected = list(_EXPERIMENTS)

    for name in selected:
        start = time.perf_counter()
        output = _EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f} s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
