"""Command-line driver for the full experiment suite.

Usage::

    python -m repro.experiments.runner                 # everything
    python -m repro.experiments.runner table1 fig2a    # a subset
    python -m repro.experiments.runner --list          # enumerate names
    python -m repro.experiments.runner --deadline 900  # wall-clock bound

Prints the regenerated tables/figures to stdout, in the paper's order.

Experiments are *isolated*: a failure in one logs a compact traceback
summary and the suite continues with the rest (``--fail-fast`` restores
abort-on-first-failure). A summary table reports per-experiment status
at the end, and the exit code is part of the contract: 0 when every
experiment succeeded, 1 when any failed or was quarantined, 2 when the
shared deadline expired — so a batch job always produces every result
it can, and CI still notices. ``--deadline`` installs an ambient
:class:`~repro.runtime.RunController` for the whole suite; an
experiment that exhausts the budget is reported as timed out and the
remaining ones are skipped.

``--jobs N`` runs on the supervised worker pool
(:mod:`repro.runtime.supervisor`): several experiments shard one-per-
task with crash isolation, retries (``--retries``), per-task deadlines
(``--task-timeout``), and poison-task quarantine; a single experiment
instead installs the plan ambiently so its own shardable seams (table
rows, grid cells, Monte-Carlo batches) parallelize. Results are
jobs-invariant either way.

Run status goes through the ``repro.experiments.runner`` logger and is
mirrored into the output stream, so batch logs interleave status with
results while ``-v``/``-q`` steer the stderr verbosity. ``--trace-dir
DIR`` records one span trace (``<name>.trace.jsonl``) and one counter
snapshot (``<name>.metrics.json``) per experiment; ``--profile`` adds
per-seam duration histograms to those snapshots.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, TextIO

from repro.engine import use_engine
from repro.errors import DeadlineExceeded, RunCancelled
from repro.experiments.annealing_compare import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.figure2a import format_figure2a, run_figure2a
from repro.experiments.figure2b import format_figure2b, run_figure2b
from repro.experiments.robust_compare import (
    format_robust_compare,
    run_robust_compare,
)
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.obs import trace
from repro.obs.logs import configure_logging, get_logger, stream_handler
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.runtime.controller import RunController, use_controller
from repro.runtime.supervisor import ParallelPlan, run_sharded, use_parallel
from repro.runtime.tasks import Task, TaskResult

logger = get_logger(__name__)

_EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: format_table1(run_table1()),
    "table2": lambda: format_table2(run_table2()),
    "fig2a": lambda: format_figure2a(run_figure2a()),
    "fig2b": lambda: format_figure2b(run_figure2b()),
    "anneal": lambda: format_annealing_comparison(run_annealing_comparison()),
    "robust": lambda: format_robust_compare(run_robust_compare()),
}

#: Traceback frames kept in a failure summary.
_TRACEBACK_FRAMES = 4


@dataclass(frozen=True)
class ExperimentOutcome:
    """Per-experiment result of one suite run."""

    name: str
    #: "ok", "failed", "timeout", "quarantined", or "skipped".
    status: str
    elapsed_s: float
    #: Compact traceback summary ("" when the experiment succeeded).
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


#: Process exit codes of :func:`main` — part of the CLI contract (see
#: docs/runtime.md): 0 all ok, 1 any failed/quarantined, 2 the shared
#: deadline expired (timeout outranks failure so batch schedulers can
#: tell "broken" from "too slow").
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_TIMEOUT = 2


def exit_code(outcomes: Sequence[ExperimentOutcome]) -> int:
    """The suite exit code for a set of per-experiment outcomes."""
    if any(outcome.status == "timeout" for outcome in outcomes):
        return EXIT_TIMEOUT
    if any(not outcome.ok for outcome in outcomes):
        return EXIT_FAILED
    return EXIT_OK


def _failure_summary(error: BaseException) -> str:
    """The last few traceback frames plus the exception line."""
    frames = traceback.extract_tb(error.__traceback__)
    lines = traceback.format_list(frames[-_TRACEBACK_FRAMES:])
    lines += traceback.format_exception_only(type(error), error)
    return "".join(lines).rstrip()


@contextlib.contextmanager
def _mirror_status(stream: TextIO) -> Iterator[None]:
    """Mirror runner log records into ``stream`` for the run's duration.

    The runner's status lines are part of its output contract (batch
    logs interleave them with the regenerated tables), so they must
    reach ``stream`` even when no global logging is configured — and
    *only* ``stream``: propagation is paused so a configured stderr
    handler does not print every status line a second time.
    """
    handler = stream_handler(stream, level=logging.INFO)
    previous_level = logger.level
    previous_propagate = logger.propagate
    if logger.getEffectiveLevel() > logging.INFO:
        logger.setLevel(logging.INFO)
    logger.propagate = False
    logger.addHandler(handler)
    try:
        yield
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous_level)
        logger.propagate = previous_propagate


def _run_one(name: str, trace_dir: str | Path | None,
             profile: bool) -> str:
    """Run one experiment, recording per-experiment observability.

    With ``trace_dir`` set, the experiment runs under its own tracer
    and metrics registry and exports ``<name>.trace.jsonl`` plus
    ``<name>.metrics.json`` — written in a ``finally`` so a failing or
    timed-out experiment still leaves the partial trace that explains
    it.
    """
    if trace_dir is None and not profile:
        return _EXPERIMENTS[name]()
    registry = MetricsRegistry()
    tracer = Tracer() if trace_dir is not None else None
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_metrics(registry))
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if profile:
            from repro.obs.instrument import use_profiling

            stack.enter_context(use_profiling())
        try:
            with trace.span(name, experiment=name):
                return _EXPERIMENTS[name]()
        finally:
            if trace_dir is not None:
                directory = Path(trace_dir)
                directory.mkdir(parents=True, exist_ok=True)
                tracer.export_jsonl(directory / f"{name}.trace.jsonl",
                                    metrics=registry)
                registry.write(directory / f"{name}.metrics.json")
                logger.info("[%s observability written to %s]",
                            name, directory)


def _experiment_task(_state, name: str, trace_dir: Optional[str],
                     profile: bool, engine: Optional[str]) -> str:
    """One experiment as a supervised-pool shard (module-level so it
    pickles by reference; the engine override rides along explicitly
    because spawn-based workers do not inherit ambient context)."""
    with use_engine(engine):
        return _run_one(name, trace_dir, profile)


def _run_sharded_suite(names: Sequence[str], plan: ParallelPlan,
                       fail_fast: bool,
                       controller: Optional[RunController],
                       stream: TextIO,
                       trace_dir: str | Path | None,
                       profile: bool,
                       engine: Optional[str]) -> List[ExperimentOutcome]:
    """Run the experiments as crash-isolated pool tasks, one each.

    Outputs print in the requested order once everything settles; a
    quarantined experiment becomes a ``quarantined`` summary row (its
    per-attempt errors logged), never a silent omission. A shared
    deadline marks every unfinished experiment ``timeout``.
    """
    import dataclasses

    plan = dataclasses.replace(plan, stop_after_failure=fail_fast)
    tasks = [Task(key=name, index=index, fn=_experiment_task,
                  args=(name,
                        str(trace_dir) if trace_dir is not None else None,
                        profile, engine))
             for index, name in enumerate(names)]
    collected: Dict[str, TaskResult] = {}

    def on_result(result: TaskResult) -> None:
        collected[result.key] = result
        if result.status == "ok":
            logger.info("[%s regenerated in %.1f s]\n",
                        result.key, result.elapsed_s)
        elif result.status == "quarantined":
            logger.error("[%s QUARANTINED after %d attempts]\n%s\n",
                         result.key, result.attempts, result.error)

    interrupted = ""
    interrupted_status = ""
    try:
        run_sharded(tasks, plan=plan, controller=controller,
                    on_result=on_result, what="experiment suite")
    except (DeadlineExceeded, RunCancelled) as error:
        interrupted = str(error)
        interrupted_status = ("timeout" if isinstance(error, DeadlineExceeded)
                              else "failed")
        logger.error("[experiment suite %s: %s]",
                     interrupted_status, error)

    outcomes: List[ExperimentOutcome] = []
    for name in names:
        result = collected.get(name)
        if result is None:
            outcomes.append(ExperimentOutcome(
                name=name, status=interrupted_status or "skipped",
                elapsed_s=0.0,
                error=interrupted or "never dispatched"))
            continue
        if result.status == "ok":
            print(result.value, file=stream)
            outcomes.append(ExperimentOutcome(
                name=name, status="ok", elapsed_s=result.elapsed_s))
        elif result.status == "quarantined":
            outcomes.append(ExperimentOutcome(
                name=name, status="quarantined",
                elapsed_s=result.elapsed_s, error=result.error))
        else:  # skipped (fail-fast stopped the dispatch)
            outcomes.append(ExperimentOutcome(
                name=name, status="skipped", elapsed_s=0.0,
                error="--fail-fast" if fail_fast else "skipped"))
    return outcomes


def run_experiments(names: Sequence[str], fail_fast: bool = False,
                    deadline_s: Optional[float] = None,
                    stream: TextIO | None = None,
                    trace_dir: str | Path | None = None,
                    profile: bool = False,
                    engine: Optional[str] = None,
                    jobs: int = 1,
                    retries: int = 2,
                    task_timeout_s: Optional[float] = None,
                    ) -> List[ExperimentOutcome]:
    """Run the named experiments with per-experiment error isolation.

    Returns one :class:`ExperimentOutcome` per requested experiment, in
    order. A failing experiment contributes a ``failed`` outcome (with
    a traceback summary) and the run continues unless ``fail_fast``;
    once a shared ``deadline_s`` budget is exhausted the failing
    experiment is ``timeout`` and the remainder are ``skipped``.
    ``trace_dir``/``profile`` enable per-experiment trace and metrics
    artifacts (see :func:`_run_one`). ``engine`` installs an ambient
    evaluation-engine override (:func:`repro.engine.use_engine`) for the
    whole suite — every optimizer running with ``engine="auto"`` then
    uses it.

    ``jobs > 1`` executes on the supervised worker pool
    (:mod:`repro.runtime.supervisor`): with several experiments
    selected, each experiment is one crash-isolated task (retried up to
    ``retries`` times, ``quarantined`` after that); with a single
    experiment, the plan installs ambiently instead so the experiment's
    own shardable seams (table rows, grid cells, Monte-Carlo batches)
    parallelize. Either way results are jobs-invariant.
    """
    stream = stream if stream is not None else sys.stdout
    controller = (RunController(deadline_s=deadline_s)
                  if deadline_s is not None else None)
    plan = (ParallelPlan(jobs=jobs, retries=retries,
                         task_timeout_s=task_timeout_s)
            if jobs > 1 else None)
    outcomes: List[ExperimentOutcome] = []
    pending = list(names)
    with use_engine(engine), use_controller(controller), \
            _mirror_status(stream):
        if plan is not None and len(pending) > 1:
            return _run_sharded_suite(pending, plan, fail_fast, controller,
                                      stream, trace_dir, profile, engine)
        outcomes = _run_serial_suite(pending, plan, fail_fast, controller,
                                     stream, trace_dir, profile)
    return outcomes


def _run_serial_suite(pending: List[str], plan: Optional[ParallelPlan],
                      fail_fast: bool,
                      controller: Optional[RunController],
                      stream: TextIO,
                      trace_dir: str | Path | None,
                      profile: bool) -> List[ExperimentOutcome]:
    """The in-process experiment loop (``jobs=1``, or one experiment).

    ``plan`` installs ambiently so a single selected experiment still
    parallelizes at its own shardable seams under ``--jobs``.
    """
    outcomes: List[ExperimentOutcome] = []
    with use_parallel(plan):
        while pending:
            name = pending.pop(0)
            start = time.perf_counter()
            try:
                if controller is not None:
                    controller.check(f"experiment {name}")
                output = _run_one(name, trace_dir, profile)
            except (DeadlineExceeded, RunCancelled) as error:
                elapsed = time.perf_counter() - start
                status = ("timeout" if isinstance(error, DeadlineExceeded)
                          else "failed")
                outcomes.append(ExperimentOutcome(
                    name=name, status=status, elapsed_s=elapsed,
                    error=str(error)))
                logger.error("[%s %s after %.1f s: %s]",
                             name, status, elapsed, error)
                # The budget is shared: nothing left for the rest.
                outcomes.extend(
                    ExperimentOutcome(name=rest, status="skipped",
                                      elapsed_s=0.0,
                                      error="suite deadline exhausted")
                    for rest in pending)
                break
            except Exception as error:  # noqa: BLE001 - isolation boundary
                elapsed = time.perf_counter() - start
                summary = _failure_summary(error)
                outcomes.append(ExperimentOutcome(
                    name=name, status="failed", elapsed_s=elapsed,
                    error=summary))
                logger.error("[%s FAILED after %.1f s]\n%s\n",
                             name, elapsed, summary)
                if fail_fast:
                    outcomes.extend(
                        ExperimentOutcome(name=rest, status="skipped",
                                          elapsed_s=0.0,
                                          error="--fail-fast")
                        for rest in pending)
                    break
                continue
            elapsed = time.perf_counter() - start
            outcomes.append(ExperimentOutcome(name=name, status="ok",
                                              elapsed_s=elapsed))
            print(output, file=stream)
            logger.info("[%s regenerated in %.1f s]\n", name, elapsed)
    return outcomes


def format_summary(outcomes: Sequence[ExperimentOutcome]) -> str:
    """Aligned status table for the end of a suite run."""
    width = max((len(outcome.name) for outcome in outcomes), default=4)
    lines = ["experiment summary:"]
    for outcome in outcomes:
        note = ""
        if outcome.status in ("timeout", "skipped") and outcome.error:
            note = f"  ({outcome.error.splitlines()[0]})"
        elif outcome.status in ("failed", "quarantined") and outcome.error:
            # The last traceback line is the exception itself.
            note = f"  ({outcome.error.splitlines()[-1].strip()})"
        lines.append(f"  {outcome.name:<{width}}  {outcome.status:<7}"
                     f"  {outcome.elapsed_s:7.1f} s{note}")
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    lines.append(f"  {len(outcomes)} run, {len(outcomes) - failed} ok, "
                 f"{failed} not ok")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the selected experiments (all by default)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="which experiments to run: "
                             f"{', '.join(_EXPERIMENTS)}, or all "
                             "(default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list the available experiment names and exit")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort the suite on the first failure")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole suite")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write per-experiment trace/metrics "
                             "artifacts (<name>.trace.jsonl, "
                             "<name>.metrics.json) into DIR")
    parser.add_argument("--profile", action="store_true",
                        help="time the hot seams into duration "
                             "histograms in the metrics artifacts")
    parser.add_argument("--engine", choices=("auto", "scalar", "fast"),
                        default=None,
                        help="evaluation engine for the whole suite "
                             "(default: each optimizer's own setting)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the supervised pool "
                             "(1 = in-process; results are identical at "
                             "any jobs count)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries per task before quarantine "
                             "(default: 2)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock budget on the pool "
                             "(default: unbounded)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise repro.* log verbosity (repeatable)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="lower repro.* log verbosity (repeatable)")
    arguments = parser.parse_args(argv)
    configure_logging(arguments.verbose - arguments.quiet)
    if arguments.list:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    selected = list(arguments.experiments or [])
    unknown = [name for name in selected
               if name != "all" and name not in _EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {', '.join(unknown)}; "
                     f"choose from {', '.join([*_EXPERIMENTS, 'all'])}")
    if not selected or "all" in selected:
        selected = list(_EXPERIMENTS)

    if arguments.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {arguments.jobs}")
    if arguments.retries < 0:
        parser.error(f"--retries must be >= 0, got {arguments.retries}")
    if arguments.task_timeout is not None and arguments.task_timeout <= 0:
        parser.error(f"--task-timeout must be > 0, "
                     f"got {arguments.task_timeout}")
    outcomes = run_experiments(selected, fail_fast=arguments.fail_fast,
                               deadline_s=arguments.deadline,
                               trace_dir=arguments.trace_dir,
                               profile=arguments.profile,
                               engine=arguments.engine,
                               jobs=arguments.jobs,
                               retries=arguments.retries,
                               task_timeout_s=arguments.task_timeout)
    print(format_summary(outcomes))
    return exit_code(outcomes)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
