"""Experiment drivers regenerating each of the paper's tables and figures.

Every module exposes a ``run_*`` function returning structured rows and a
``format_*`` function rendering the same text table the bench targets
print. ``runner.main()`` drives the full set from the command line::

    python -m repro.experiments.runner [table1|table2|fig2a|fig2b|anneal|all]

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.table2 import Table2Row, format_table2, run_table2
from repro.experiments.figure2a import Figure2aPoint, format_figure2a, run_figure2a
from repro.experiments.figure2b import Figure2bPoint, format_figure2b, run_figure2b
from repro.experiments.annealing_compare import (
    AnnealingComparisonRow,
    format_annealing_comparison,
    run_annealing_comparison,
)

__all__ = [
    "ExperimentConfig",
    "build_problem",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2",
    "format_table2",
    "Figure2aPoint",
    "run_figure2a",
    "format_figure2a",
    "Figure2bPoint",
    "run_figure2b",
    "format_figure2b",
    "AnnealingComparisonRow",
    "run_annealing_comparison",
    "format_annealing_comparison",
]
