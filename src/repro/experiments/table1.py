"""Table 1: baseline energies at a fixed 700 mV threshold.

"Table 1 shows the static and dynamic energy consumption of the circuits
under minimum total power for two different input activities for a fixed
threshold voltage of 700 mV. The energy consumption metrics were obtained
by optimizing the device widths and supply voltage to minimize power
while meeting a cycle time constraint of 300 MHz."

Each row: circuit, gate count, depth, input activity, static energy,
dynamic energy, total energy (J/cycle) and critical delay (ns). The paper
notes the baseline optimizer "coincidentally returned Vdd values close to
3.3 V" — the row records the chosen Vdd so that observation can be
checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.report import format_energy, format_table
from repro.experiments.common import ExperimentConfig, build_problem
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.baseline import optimize_fixed_vth
from repro.runtime.supervisor import (ParallelPlan, resolve_parallel,
                                      run_sharded)
from repro.runtime.tasks import Task
from repro.units import NS


@dataclass(frozen=True)
class Table1Row:
    """One (circuit, activity) baseline row."""

    circuit: str
    gates: int
    depth: int
    activity: float
    static_energy: float
    dynamic_energy: float
    critical_delay: float
    vdd: float

    @property
    def total_energy(self) -> float:
        return self.static_energy + self.dynamic_energy


def _table1_row(_state, circuit: str, activity: float,
                config: ExperimentConfig) -> Table1Row:
    """One (circuit, activity) baseline row — a pure table shard."""
    network = benchmark_circuit(circuit)
    problem = build_problem(circuit, activity,
                            frequency=config.frequency,
                            probability=config.probability)
    result = optimize_fixed_vth(problem, vth=config.baseline_vth)
    return Table1Row(
        circuit=circuit,
        gates=network.gate_count,
        depth=network.depth,
        activity=activity,
        static_energy=result.energy.static,
        dynamic_energy=result.energy.dynamic,
        critical_delay=result.timing.critical_delay,
        vdd=result.design.vdd)


def run_table1(config: ExperimentConfig | None = None,
               parallel: Optional[ParallelPlan] = None
               ) -> Tuple[Table1Row, ...]:
    """Regenerate Table 1 for the configured circuits and activities.

    With a parallel plan (explicit ``parallel=`` or the ambient
    :func:`repro.runtime.use_parallel` plan) each (circuit, activity)
    row runs as one supervised-pool task; rows are pure functions of
    the config and the merge is canonical, so the table is identical at
    any jobs count.
    """
    config = config or ExperimentConfig()
    cells = [(circuit, activity)
             for circuit in config.circuits
             for activity in config.activities]
    plan = resolve_parallel(parallel)
    if plan is not None and plan.active and len(cells) > 1:
        tasks = [Task(key=f"table1[{circuit}@{activity:g}]", index=index,
                      fn=_table1_row, args=(circuit, activity, config))
                 for index, (circuit, activity) in enumerate(cells)]
        run = run_sharded(tasks, plan=plan, what="table1")
        run.raise_if_quarantined("table1")
        return tuple(run.values())
    return tuple(_table1_row(None, circuit, activity, config)
                 for circuit, activity in cells)


def format_table1(rows: Tuple[Table1Row, ...]) -> str:
    """Render the Table 1 rows as aligned text."""
    return format_table(
        headers=["Circuit", "Gates", "Depth", "Activity", "Static E",
                 "Dynamic E", "Total E", "Delay (ns)", "Vdd (V)"],
        rows=[[row.circuit, row.gates, row.depth, f"{row.activity:.2f}",
               format_energy(row.static_energy),
               format_energy(row.dynamic_energy),
               format_energy(row.total_energy),
               f"{row.critical_delay / NS:.3f}",
               f"{row.vdd:.2f}"]
              for row in rows],
        title="Table 1 — baseline (fixed Vth = 700 mV, width+Vdd optimized, "
              "300 MHz)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
