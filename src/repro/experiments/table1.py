"""Table 1: baseline energies at a fixed 700 mV threshold.

"Table 1 shows the static and dynamic energy consumption of the circuits
under minimum total power for two different input activities for a fixed
threshold voltage of 700 mV. The energy consumption metrics were obtained
by optimizing the device widths and supply voltage to minimize power
while meeting a cycle time constraint of 300 MHz."

Each row: circuit, gate count, depth, input activity, static energy,
dynamic energy, total energy (J/cycle) and critical delay (ns). The paper
notes the baseline optimizer "coincidentally returned Vdd values close to
3.3 V" — the row records the chosen Vdd so that observation can be
checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_energy, format_table
from repro.experiments.common import ExperimentConfig, build_problem
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.baseline import optimize_fixed_vth
from repro.units import NS


@dataclass(frozen=True)
class Table1Row:
    """One (circuit, activity) baseline row."""

    circuit: str
    gates: int
    depth: int
    activity: float
    static_energy: float
    dynamic_energy: float
    critical_delay: float
    vdd: float

    @property
    def total_energy(self) -> float:
        return self.static_energy + self.dynamic_energy


def run_table1(config: ExperimentConfig | None = None) -> Tuple[Table1Row, ...]:
    """Regenerate Table 1 for the configured circuits and activities."""
    config = config or ExperimentConfig()
    rows: List[Table1Row] = []
    for circuit in config.circuits:
        network = benchmark_circuit(circuit)
        for activity in config.activities:
            problem = build_problem(circuit, activity,
                                    frequency=config.frequency,
                                    probability=config.probability)
            result = optimize_fixed_vth(problem, vth=config.baseline_vth)
            rows.append(Table1Row(
                circuit=circuit,
                gates=network.gate_count,
                depth=network.depth,
                activity=activity,
                static_energy=result.energy.static,
                dynamic_energy=result.energy.dynamic,
                critical_delay=result.timing.critical_delay,
                vdd=result.design.vdd))
    return tuple(rows)


def format_table1(rows: Tuple[Table1Row, ...]) -> str:
    """Render the Table 1 rows as aligned text."""
    return format_table(
        headers=["Circuit", "Gates", "Depth", "Activity", "Static E",
                 "Dynamic E", "Total E", "Delay (ns)", "Vdd (V)"],
        rows=[[row.circuit, row.gates, row.depth, f"{row.activity:.2f}",
               format_energy(row.static_energy),
               format_energy(row.dynamic_energy),
               format_energy(row.total_energy),
               f"{row.critical_delay / NS:.3f}",
               f"{row.vdd:.2f}"]
              for row in rows],
        title="Table 1 — baseline (fixed Vth = 700 mV, width+Vdd optimized, "
              "300 MHz)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
