"""Robust vs nominal vs worst-case optima under statistical variation.

The statistical counterpart of Figure 2(a): the worst-case corners
guarantee timing at the extreme tolerance and overpay in energy; the
nominal optimum is cheapest but gambles on yield; the variation-aware
robust optimum (p95 energy, yield-constrained — see
:mod:`repro.robust`) sits between. All three designs are re-scored
against the *same* fresh-seed Monte-Carlo sample set, so the energy and
yield columns compare designs, not sample draws.

Expected shape: the robust design meets the yield target with a p95
energy at or below the worst-case design's, while the nominal design
either misses yield or wins on energy by luck of the clock margin.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_energy, format_table
from repro.experiments.common import ExperimentConfig, build_problem
from repro.optimize.heuristic import HeuristicSettings
from repro.robust import RobustConfig, compare_robust

DEFAULT_CIRCUITS: Tuple[str, ...] = ("s27", "s298")
DEFAULT_ACTIVITY = 0.1


def run_robust_compare(circuits: Sequence[str] = DEFAULT_CIRCUITS,
                       activity: float = DEFAULT_ACTIVITY,
                       config: ExperimentConfig | None = None,
                       robust: RobustConfig | None = None,
                       settings: HeuristicSettings | None = None
                       ) -> Tuple[Dict[str, object], ...]:
    """One :func:`repro.robust.compare_robust` report per circuit."""
    config = config or ExperimentConfig()
    robust = robust or RobustConfig()
    settings = settings or HeuristicSettings(engine="fast")
    reports = []
    for circuit in circuits:
        problem = build_problem(circuit, activity,
                                frequency=config.frequency,
                                probability=config.probability)
        reports.append(compare_robust(problem, robust, settings=settings))
    return tuple(reports)


def format_robust_compare(reports: Tuple[Dict[str, object], ...]) -> str:
    """Render the comparison reports as one aligned table."""
    rows = []
    measure = "p95"
    target = 0.95
    for report in reports:
        measure = report["config"]["measure"]
        target = report["config"]["yield_target"]
        for name in ("nominal", "worst_case", "robust"):
            leg = report["legs"][name]
            verification = leg["verification"]
            value = verification[measure]
            rows.append([
                report["circuit"], name, f"{leg['vdd']:.3f}",
                f"{leg['vth'] * 1000:.0f}",
                format_energy(leg["nominal_energy"]),
                format_energy(value) if value is not None else "-",
                f"{verification['timing_yield']:.1%}",
                "yes" if leg["meets_yield"] else "NO",
            ])
    return format_table(
        headers=["circuit", "design", "Vdd (V)", "Vth (mV)", "E nominal",
                 f"E {measure}", "yield", f">= {target:.0%}"],
        rows=rows,
        title="Robust vs nominal vs worst-case (fresh-seed verification)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_robust_compare(run_robust_compare()))


if __name__ == "__main__":  # pragma: no cover
    main()
