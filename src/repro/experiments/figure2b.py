"""Figure 2(b): power savings vs cycle-time slack.

"We also explored the role of the available cycle time on the power
savings obtained for different circuits. Figure 2(b) shows the data
obtained for s298."

Expected shape: savings grow with slack — "the larger the allowed delay
of a single CMOS gate, the lower is the optimum power consumption of the
gate" (§4), so a relaxed clock lets the joint optimizer push ``Vdd``
further down while the (clock-pinned) baseline stands still — and then
saturate: with a longer cycle the static energy integrates leakage for
longer, capping the per-cycle gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.sweeps import sweep_cycle_slack
from repro.experiments.common import ExperimentConfig, build_problem
from repro.optimize.heuristic import HeuristicSettings
from repro.units import NS

DEFAULT_SLACKS: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0, 2.5, 3.0)
DEFAULT_CIRCUIT = "s298"
DEFAULT_ACTIVITY = 0.1


@dataclass(frozen=True)
class Figure2bPoint:
    """One sample of the Figure 2(b) curve."""

    slack_factor: float
    cycle_time: float
    savings: float
    vdd: float
    vth: float


def run_figure2b(circuit: str = DEFAULT_CIRCUIT,
                 activity: float = DEFAULT_ACTIVITY,
                 slack_factors: Sequence[float] = DEFAULT_SLACKS,
                 config: ExperimentConfig | None = None,
                 settings: HeuristicSettings | None = None
                 ) -> Tuple[Figure2bPoint, ...]:
    """Regenerate the Figure 2(b) series."""
    config = config or ExperimentConfig()
    problem = build_problem(circuit, activity, frequency=config.frequency,
                            probability=config.probability)
    sweep = sweep_cycle_slack(problem, slack_factors, settings=settings)
    return tuple(Figure2bPoint(slack_factor=point.slack_factor,
                               cycle_time=point.cycle_time,
                               savings=point.savings,
                               vdd=point.vdd,
                               vth=point.vth)
                 for point in sweep)


def format_figure2b(points: Tuple[Figure2bPoint, ...],
                    circuit: str = DEFAULT_CIRCUIT) -> str:
    """Render the Figure 2(b) series as aligned text."""
    return format_table(
        headers=["Slack factor", "Cycle (ns)", "Power savings", "Vdd (V)",
                 "Vth (V)"],
        rows=[[f"{point.slack_factor:.2f}", f"{point.cycle_time / NS:.2f}",
               f"{point.savings:.2f}x", f"{point.vdd:.2f}",
               f"{point.vth:.3f}"]
              for point in points],
        title=f"Figure 2(b) — savings vs cycle-time slack ({circuit})")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure2b(run_figure2b()))


if __name__ == "__main__":  # pragma: no cover
    main()
