"""Table 2: joint (Vdd, Vth, width) optimization results and savings.

"Table 2 shows the static and dynamic energy components yielded by our
algorithm for all the benchmark logic networks of Table 1. It is seen
that the total energy dissipation of the circuits reduces by factors
larger than 10 ... the static and the dynamic power components are
approximately equal ... the savings increase with specified input
activity levels. ... The values for the threshold voltage returned by the
heuristic were in the range of 100–300 mV while the supply voltages
ranged between 600 mV and 1.2 V."

Each row pairs the joint optimum with its Table 1 baseline and reports
the savings factor — the paper's headline result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_energy, format_table
from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.table1 import Table1Row, run_table1
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.units import NS


@dataclass(frozen=True)
class Table2Row:
    """One (circuit, activity) joint-optimization row."""

    circuit: str
    activity: float
    static_energy: float
    dynamic_energy: float
    critical_delay: float
    vdd: float
    vth: float
    baseline_total: float

    @property
    def total_energy(self) -> float:
        return self.static_energy + self.dynamic_energy

    @property
    def savings(self) -> float:
        """Baseline / optimized total energy (the paper's last column)."""
        return self.baseline_total / self.total_energy

    @property
    def static_to_dynamic(self) -> float:
        return self.static_energy / self.dynamic_energy


def run_table2(config: ExperimentConfig | None = None,
               settings: HeuristicSettings | None = None,
               baseline_rows: Tuple[Table1Row, ...] | None = None
               ) -> Tuple[Table2Row, ...]:
    """Regenerate Table 2 (and its Table 1 baselines if not supplied)."""
    config = config or ExperimentConfig()
    if baseline_rows is None:
        baseline_rows = run_table1(config)
    baseline_lookup = {(row.circuit, row.activity): row.total_energy
                       for row in baseline_rows}
    rows: List[Table2Row] = []
    for circuit in config.circuits:
        for activity in config.activities:
            problem = build_problem(circuit, activity,
                                    frequency=config.frequency,
                                    probability=config.probability)
            result = optimize_joint(problem, settings=settings)
            rows.append(Table2Row(
                circuit=circuit,
                activity=activity,
                static_energy=result.energy.static,
                dynamic_energy=result.energy.dynamic,
                critical_delay=result.timing.critical_delay,
                vdd=result.design.vdd,
                vth=float(result.design.distinct_vths()[0]),
                baseline_total=baseline_lookup[(circuit, activity)]))
    return tuple(rows)


def format_table2(rows: Tuple[Table2Row, ...]) -> str:
    """Render the Table 2 rows as aligned text."""
    return format_table(
        headers=["Circuit", "Activity", "Static E", "Dynamic E", "Total E",
                 "Delay (ns)", "Vdd (V)", "Vth (V)", "Savings"],
        rows=[[row.circuit, f"{row.activity:.2f}",
               format_energy(row.static_energy),
               format_energy(row.dynamic_energy),
               format_energy(row.total_energy),
               f"{row.critical_delay / NS:.3f}",
               f"{row.vdd:.2f}", f"{row.vth:.3f}",
               f"{row.savings:.1f}x"]
              for row in rows],
        title="Table 2 — joint Vdd/Vth/width optimization (Procedure 1 + 2, "
              "300 MHz)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table2(run_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
