"""repro — reproduction of Pant, De & Chatterjee, DAC 1997.

"Device-Circuit Optimization for Minimal Energy and Power Consumption in
CMOS Random Logic Networks": joint optimization of the supply voltage,
threshold voltage(s) and per-gate device widths of a CMOS random logic
network, minimizing total (static + dynamic) energy per cycle under a
clock-frequency constraint.

Public API highlights
---------------------

* :class:`repro.technology.Technology` — the process deck.
* :mod:`repro.netlist` — logic networks, ``.bench`` I/O, benchmark suite.
* :mod:`repro.activity` — Najm transition-density activity estimation.
* :mod:`repro.interconnect` — Rent's-rule stochastic wire-length model.
* :mod:`repro.timing` — transregional delay model, STA, path enumeration
  and the paper's Procedure 1 delay budgeting.
* :mod:`repro.power` — static/dynamic energy models (Appendix A.1).
* :mod:`repro.optimize` — the paper's Procedure 2 heuristic, the
  fixed-Vth baseline, simulated annealing and SciPy comparators, plus
  the multi-Vth/multi-Vdd/variation/yield/discretization extensions.
* :mod:`repro.bdd` / :mod:`repro.fastpath` — the ROBDD engine behind the
  exact activity estimator and the vectorized evaluation engine.
* :mod:`repro.experiments` — drivers regenerating each paper table/figure.
"""

from repro.technology import Technology
from repro.netlist import LogicNetwork, benchmark_circuit, benchmark_names

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "LogicNetwork",
    "benchmark_circuit",
    "benchmark_names",
    "__version__",
]
