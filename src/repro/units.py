"""Unit helpers and conversions.

All quantities inside :mod:`repro` are expressed in base SI units:
volts, amperes, seconds, farads, ohms, metres, joules, watts and hertz.
These helpers exist so that call sites can say ``300 * MHZ`` or
``delay / NS`` instead of sprinkling powers of ten through the code.
"""

from __future__ import annotations

# --- multipliers -----------------------------------------------------------

GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# --- frequency -------------------------------------------------------------

HZ = 1.0
KHZ = KILO
MHZ = MEGA
GHZ = GIGA

# --- time ------------------------------------------------------------------

S = 1.0
MS = MILLI
US = MICRO
NS = NANO
PS = PICO

# --- voltage / current -----------------------------------------------------

V = 1.0
MV = MILLI
UA = MICRO
NA = NANO
PA = PICO
MA = MILLI

# --- capacitance / resistance / inductance ---------------------------------

F = 1.0
PF = PICO
FF = FEMTO
OHM = 1.0
KOHM = KILO

# --- length ----------------------------------------------------------------

M = 1.0
CM = 1e-2
MM = MILLI
UM = MICRO
NM = NANO

# --- energy / power --------------------------------------------------------

J = 1.0
PJ = PICO
FJ = FEMTO
AJ = ATTO
W = 1.0
MW = MILLI
UW = MICRO
NW = NANO


def to_unit(value: float, unit: float) -> float:
    """Express ``value`` (in base SI) in multiples of ``unit``.

    >>> to_unit(3.3e-9, NS)
    3.3
    """
    return value / unit


def from_unit(value: float, unit: float) -> float:
    """Convert ``value`` given in ``unit`` into base SI.

    >>> from_unit(300, MHZ)
    300000000.0
    """
    return value * unit


def format_si(value: float, base_unit: str = "") -> str:
    """Render ``value`` with an engineering SI prefix.

    >>> format_si(3.3e-9, 's')
    '3.300 ns'
    """
    prefixes = [
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
    ]
    big_prefixes = [(1e9, "G"), (1e6, "M"), (1e3, "k")]
    if value == 0.0:
        return f"0.000 {base_unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in big_prefixes:
        if magnitude >= scale:
            return f"{value / scale:.3f} {prefix}{base_unit}"
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.3f} {prefix}{base_unit}"
    return f"{value:.3e} {base_unit}".rstrip()
