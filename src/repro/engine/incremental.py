"""The incremental engine: exact delta re-evaluation of single-gate moves.

:class:`IncrementalEngine` wraps an :class:`~repro.engine.array
.ArrayEngine` and adds a *stateful* API for move-based optimizers (the
annealer's hot loop):

* :meth:`begin` installs a concrete design point with one full
  vectorized evaluation,
* :meth:`apply_move` changes one gate's width and re-derives only what
  that width can touch — the mutated gate's own delay terms, its fanin
  drivers' external-cap/load terms, the downstream arrival cone in
  topological level order (with early termination as soon as a
  recomputed delay *and* arrival are unchanged), and the static/dynamic
  energy terms referencing the mutated width,
* :meth:`apply_voltage` changes ``Vdd``/``Vth`` and falls back to the
  inner engine's vectorized full evaluation (reusing the width-only
  parasitics, which a voltage move cannot change).

**Recompute, don't accumulate.** Every affected value is recomputed
from scratch through the *same* NumPy expressions (and, for per-row
parasitics, the same ``reduceat`` segment reductions) as the fastpath
kernels — never adjusted by a delta — so the maintained state is a pure
function of ``(widths, Vdd, Vth)`` and every measurement is
bit-identical to a fresh :func:`~repro.fastpath.evaluate.fast_sta` /
:func:`~repro.fastpath.evaluate.fast_total_energy` evaluation. That
exactness is what lets the annealer swap engines without perturbing its
accepted-move trajectory, and it makes reverts trivial: re-applying the
previous width restores the previous state exactly.

The stateless :class:`~repro.engine.base.Engine` API delegates to the
inner array engine, so ``"incremental"`` behaves like ``"fast"``
anywhere an optimizer does not drive the move API.

Observability: ``engine.incremental.moves`` / ``.cone_gates`` /
``.full_refreshes`` counters (see :mod:`repro.obs.instrument`) plus a
span around each full refresh.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.array import ArrayEngine
from repro.engine.base import Engine, EngineMeasurement, EngineSizing
from repro.errors import OptimizationError, TimingError
from repro.fastpath.arrays import _CSR
from repro.fastpath.evaluate import _currents, _segment, _slope_coefficients
from repro.obs import trace
from repro.obs.instrument import (
    INCREMENTAL_CONE_GATES,
    INCREMENTAL_FULL_REFRESHES,
    INCREMENTAL_MOVES,
)
from repro.obs.metrics import current_metrics
from repro.optimize.problem import OptimizationProblem
from repro.timing.budgeting import BudgetResult


def _rows_of(value, rows):
    """The ``rows`` selection of a scalar-or-vector per-gate quantity."""
    if isinstance(value, np.ndarray):
        return value[rows]
    return value


class _MovePlan:
    """Precomputed constants for one gate's width move.

    ``rows`` are the gate itself plus its fanin drivers — exactly the
    rows whose external-cap/RC/load/switching terms reference the moved
    width. All fanout-CSR gathers below are frozen at construction; per
    move only the sink widths are re-gathered, and the per-row segment
    reductions run over the identical entry sequences (hence identical
    ``reduceat`` segments) as the full-range kernel.
    """

    __slots__ = ("rows", "ptr", "is_gate", "gate_sinks", "caps", "res",
                 "half_branch_cap", "wire_plus_boundary", "flight",
                 "self_cap", "activity", "csr")

    def __init__(self, arrays, rows: np.ndarray):
        fanout = arrays.fanout
        pieces = [np.arange(fanout.ptr[r], fanout.ptr[r + 1])
                  for r in rows]
        entries = (np.concatenate(pieces) if pieces
                   else np.empty(0, dtype=np.int64))
        lengths = np.asarray([len(piece) for piece in pieces],
                             dtype=np.int64)
        self.rows = rows
        self.ptr = np.concatenate(([0], np.cumsum(lengths)))
        self.is_gate = arrays.fanout_is_gate[entries]
        entry_sinks = fanout.indices[entries]
        self.gate_sinks = entry_sinks[self.is_gate]
        self.caps = arrays.fanout_cap[entries]
        self.res = arrays.branch_res[entries]
        self.half_branch_cap = 0.5 * arrays.branch_cap[entries]
        self.wire_plus_boundary = (arrays.wire_cap[rows]
                                   + arrays.boundary_cap[rows])
        self.csr = _CSR(self.ptr, entry_sinks)
        # Flight is width-independent: reduce it once, here.
        self.flight = _segment(self.csr, arrays.branch_flight[entries],
                               np.maximum, 0.0)
        self.self_cap = arrays.self_cap[rows]
        self.activity = arrays.activity[rows]

    def parasitics(self, w: np.ndarray, boundary_width: float
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ext, wire_rc, flight) for :attr:`rows` at widths ``w``.

        Mirrors :func:`repro.fastpath.evaluate._external_caps` term by
        term over the same entry order, so every per-row value is
        bit-identical to the full-range kernel's row.
        """
        sink_w = np.full(self.is_gate.shape, boundary_width)
        sink_w[self.is_gate] = w[self.gate_sinks]
        cap_entries = np.where(self.is_gate, sink_w * self.caps, 0.0)
        rc_entries = self.res * (self.half_branch_cap + sink_w * self.caps)
        ext = (self.wire_plus_boundary
               + _segment(self.csr, cap_entries, np.add, 0.0))
        rc = _segment(self.csr, rc_entries, np.maximum, 0.0)
        return ext, rc, self.flight


class IncrementalEngine(Engine):
    """Delta evaluation for move-based searches (see module docstring)."""

    name = "incremental"
    #: Capability flag duck-typed by optimizers (no import needed).
    supports_moves = True

    def __init__(self, problem: OptimizationProblem,
                 width_method: str = "closed_form", bisect_steps: int = 24):
        super().__init__(problem)
        self._inner = ArrayEngine(problem, width_method=width_method,
                                  bisect_steps=bisect_steps)
        self.width_method = width_method
        self.bisect_steps = bisect_steps
        arrays = self.arrays = self._inner.arrays
        n = arrays.n_gates
        self._frequency = problem.frequency
        self._boundary_width = float(arrays.ctx.BOUNDARY_WIDTH)

        # Topological bookkeeping: the level-group ordinal of each row
        # (fanouts always sit at a strictly smaller ordinal — the STA
        # sweep's processing direction) and plain-list adjacency for the
        # cone walk.
        group = np.empty(n, dtype=np.int64)
        for ordinal, (start, stop) in enumerate(arrays.level_slices):
            group[start:stop] = ordinal
        self._group: List[int] = group.tolist()
        view = arrays.python_view()
        self._fanin_rows: List[List[int]] = [
            view.fanin_idx[view.fanin_ptr[i]:view.fanin_ptr[i + 1]]
            for i in range(n)]
        self._fanout_rows: List[List[int]] = [
            [sink for sink in
             view.fanout_idx[view.fanout_ptr[i]:view.fanout_ptr[i + 1]]
             if sink >= 0]
            for i in range(n)]

        # Per-level fanin views for the full-refresh sweep (constant, so
        # hoisted out of the per-refresh loop; fast_sta rebuilds them).
        self._level_views = []
        for start, stop in arrays.level_slices:
            lo = arrays.fanin.ptr[start]
            hi = arrays.fanin.ptr[stop]
            idx = arrays.fanin.indices[lo:hi]
            self._level_views.append(
                (start, stop, _CSR(arrays.fanin.ptr[start:stop + 1] - lo, idx),
                 idx))

        # Output rows for the critical-delay reduction, validated the
        # same way fast_sta validates them (primary-input outputs arrive
        # at 0.0 and cannot raise the max, which starts at 0.0).
        network = arrays.ctx.network
        out_rows = []
        for name in network.outputs:
            position = arrays.index.get(name)
            if position is None:
                if not network.gate(name).is_input:
                    raise TimingError(
                        f"output {name!r} is neither a logic gate nor a "
                        f"primary input")
                continue
            out_rows.append(position)
        self._out_rows = np.asarray(sorted(set(out_rows)), dtype=np.int64)

        self._plans: List[Optional[_MovePlan]] = [None] * n
        self._w: Optional[np.ndarray] = None

        #: Diagnostics mirrored into the metrics registry.
        self.moves = 0
        self.cone_gates = 0
        self.full_refreshes = 0
        self.early_stops = 0

    # -- stateless Engine API: delegate to the inner array engine -----------

    def size_widths(self, budgets: BudgetResult, vdd, vth, *,
                    warm=None) -> EngineSizing:
        return self._inner.size_widths(budgets, vdd, vth, warm=warm)

    def sta(self, vdd, vth, widths) -> float:
        return self._inner.sta(vdd, vth, widths)

    def total_energy(self, vdd, vth, widths) -> Tuple[float, float]:
        return self._inner.total_energy(vdd, vth, widths)

    def widths_vector(self, source) -> np.ndarray:
        return self._inner.widths_vector(source)

    # -- stateful move API ---------------------------------------------------

    def begin(self, vdd, vth, widths) -> EngineMeasurement:
        """Install a design point; one full evaluation seeds the state."""
        self._vdd = self._inner._values(vdd)
        self._vth = self._inner._values(vth)
        self._w = np.array(self._inner._internal_widths(widths), dtype=float)
        with trace.span("incremental_refresh", reason="begin"):
            self._refresh(recompute_parasitics=True)
        return self.measurement()

    def measurement(self) -> EngineMeasurement:
        """The current design point's (static, dynamic, critical delay)."""
        self._require_state()
        return EngineMeasurement(static=self._static, dynamic=self._dynamic,
                                 critical_delay=self._critical)

    def apply_move(self, gate: str, new_width: float) -> EngineMeasurement:
        """Set ``gate``'s width and delta-re-evaluate; returns the new
        measurement. Re-applying the previous width reverts exactly
        (every maintained value is a pure function of the state)."""
        self._require_state()
        arrays = self.arrays
        row = arrays.index.get(gate)
        if row is None:
            raise OptimizationError(f"unknown gate {gate!r}")
        w = self._w
        w[row] = new_width

        plan = self._plans[row]
        if plan is None:
            local = [row]
            for fanin in self._fanin_rows[row]:
                if fanin not in local:
                    local.append(fanin)
            plan = _MovePlan(arrays, np.asarray(sorted(local),
                                                dtype=np.int64))
            self._plans[row] = plan
        rows = plan.rows

        # Local terms: external cap / wire RC / load / switching / fixed
        # of the moved gate and its fanin drivers, recomputed from
        # scratch through the kernel expressions.
        ext, rc, flight = plan.parasitics(w, self._boundary_width)
        load = w[rows] * plan.self_cap + ext
        drive = self._drive[rows]
        k_vdd = _rows_of(self._k_vdd, rows)
        with np.errstate(divide="ignore", invalid="ignore"):
            switching = np.where(drive > 0.0,
                                 k_vdd * load / (drive * w[rows]), np.inf)
        self._ext[rows] = ext
        self._rc[rows] = rc
        self._load[rows] = load
        self._fixed[rows] = switching + rc + flight

        # Energy terms referencing the moved width: the gate's own
        # leakage scales with w; the local rows' switched loads changed.
        sl = slice(row, row + 1)
        self._static_terms[sl] = (_rows_of(self._vdd, sl) * w[sl]
                                  * _rows_of(self._off, sl)
                                  / self._frequency)
        vdd_rows = _rows_of(self._vdd, rows)
        self._dynamic_terms[rows] = (0.5 * plan.activity * vdd_rows
                                     * vdd_rows * load)

        cone = self._propagate(rows)

        self._static = float(np.sum(self._static_terms))
        self._dynamic = (float(np.sum(self._dynamic_terms))
                         + self._input_dynamic())
        self._critical = self._critical_delay()

        self.moves += 1
        self.cone_gates += cone
        metrics = current_metrics()
        metrics.incr(INCREMENTAL_MOVES)
        metrics.incr(INCREMENTAL_CONE_GATES, cone)
        return self.measurement()

    def apply_voltage(self, vdd=None, vth=None) -> EngineMeasurement:
        """Change the rails; falls back to a vectorized full refresh.

        The width-only parasitics (external caps, wire RC, flight,
        loads) are pure functions of the unchanged widths and are
        reused — the refresh recomputes everything a voltage reaches.
        """
        self._require_state()
        if vdd is not None:
            self._vdd = self._inner._values(vdd)
        if vth is not None:
            self._vth = self._inner._values(vth)
        with trace.span("incremental_refresh", reason="voltage"):
            self._refresh(recompute_parasitics=False)
        return self.measurement()

    def snapshot(self) -> Tuple:
        """An O(N) copy of the mutable state, for :meth:`restore`."""
        self._require_state()
        return (self._vdd, self._vth, self._w.copy(), self._ext.copy(),
                self._rc.copy(), self._flight_vec.copy(), self._load.copy(),
                self._fixed.copy(), self._delays.copy(),
                self._arrivals.copy(), self._static_terms.copy(),
                self._dynamic_terms.copy(), self._drive, self._off,
                self._slope_k, self._k_vdd, self._static, self._dynamic,
                self._critical)

    def restore(self, token: Tuple) -> EngineMeasurement:
        """Reinstall a :meth:`snapshot` (the annealer's voltage revert)."""
        (self._vdd, self._vth, self._w, self._ext, self._rc,
         self._flight_vec, self._load, self._fixed, self._delays,
         self._arrivals, self._static_terms, self._dynamic_terms,
         self._drive, self._off, self._slope_k, self._k_vdd, self._static,
         self._dynamic, self._critical) = token
        return self.measurement()

    # -- internals -----------------------------------------------------------

    def _require_state(self) -> None:
        if self._w is None:
            raise OptimizationError(
                "incremental engine has no design point: call begin() "
                "before apply_move()/apply_voltage()/measurement()")

    def _refresh(self, recompute_parasitics: bool) -> None:
        """Full re-evaluation at the current (w, Vdd, Vth).

        Expression-for-expression the same computation as ``fast_sta`` +
        ``fast_total_energy`` (with the per-level fanin views hoisted),
        so the refreshed state is bit-identical to the inner engine's.
        """
        from repro.fastpath.evaluate import _external_caps

        arrays = self.arrays
        tech = arrays.ctx.tech
        n = arrays.n_gates
        vdd, vth, w = self._vdd, self._vth, self._w

        current, off = _currents(arrays, vdd, vth)
        stack = 1.0 + tech.stack_derating * (arrays.fanin_count - 1)
        self._drive = current / stack - arrays.fanin_count * off
        self._off = off
        self._slope_k = _slope_coefficients(arrays, vdd, vth)
        self._k_vdd = tech.velocity_saturation_coeff * vdd

        if recompute_parasitics:
            ext, rc, flight = _external_caps(arrays, w, 0, n)
            self._ext, self._rc, self._flight_vec = ext, rc, flight
            self._load = w * arrays.self_cap + ext

        with np.errstate(divide="ignore", invalid="ignore"):
            switching = np.where(self._drive > 0.0,
                                 self._k_vdd * self._load
                                 / (self._drive * w), np.inf)
        self._fixed = switching + self._rc + self._flight_vec

        delays = np.zeros(n)
        arrivals = np.zeros(n)
        slope_k = self._slope_k
        fixed = self._fixed
        for start, stop, view, idx in reversed(self._level_views):
            max_fanin_delay = _segment(view, delays[idx], np.maximum, 0.0)
            max_fanin_arrival = _segment(view, arrivals[idx], np.maximum, 0.0)
            delays[start:stop] = (_rows_of(slope_k, slice(start, stop))
                                  * max_fanin_delay + fixed[start:stop])
            arrivals[start:stop] = max_fanin_arrival + delays[start:stop]
        self._delays = delays
        self._arrivals = arrivals

        self._static_terms = vdd * w * off / self._frequency
        self._dynamic_terms = 0.5 * arrays.activity * vdd * vdd * self._load
        self._static = float(np.sum(self._static_terms))
        self._dynamic = (float(np.sum(self._dynamic_terms))
                         + self._input_dynamic())
        self._critical = self._critical_delay()

        self.full_refreshes += 1
        current_metrics().incr(INCREMENTAL_FULL_REFRESHES)

    def _propagate(self, seed_rows: np.ndarray) -> int:
        """Recompute the arrival cone of the seeds, level by level.

        Processes level groups in descending ordinal (the STA sweep's
        direction: fanouts live at strictly smaller ordinals), stopping
        a branch as soon as a row's recomputed delay *and* arrival both
        equal the stored values. Returns the number of rows recomputed.
        """
        delays = self._delays
        arrivals = self._arrivals
        group = self._group
        slope_k = self._slope_k
        slope_is_vec = isinstance(slope_k, np.ndarray)
        fixed = self._fixed
        pending: Dict[int, set] = {}
        for row in seed_rows:
            pending.setdefault(group[row], set()).add(int(row))

        cone = 0
        while pending:
            ordinal = max(pending)
            for row in sorted(pending.pop(ordinal)):
                cone += 1
                max_fanin_delay = 0.0
                max_fanin_arrival = 0.0
                for fanin in self._fanin_rows[row]:
                    if delays[fanin] > max_fanin_delay:
                        max_fanin_delay = delays[fanin]
                    if arrivals[fanin] > max_fanin_arrival:
                        max_fanin_arrival = arrivals[fanin]
                slope = slope_k[row] if slope_is_vec else slope_k
                new_delay = slope * max_fanin_delay + fixed[row]
                new_arrival = max_fanin_arrival + new_delay
                if new_delay == delays[row] and new_arrival == arrivals[row]:
                    self.early_stops += 1
                    continue
                delays[row] = new_delay
                arrivals[row] = new_arrival
                for sink in self._fanout_rows[row]:
                    pending.setdefault(group[sink], set()).add(sink)
        return cone

    def _input_dynamic(self) -> float:
        """The module-port dynamic term (mirrors ``fast_total_energy``).

        Width moves on gates fed by primary inputs change the input-net
        loads, and the term is a handful of vectorized reductions over
        the input count — recomputing it whole is cheaper than tracking
        which inputs a move touches, and trivially exact.
        """
        arrays = self.arrays
        vdd = self._vdd
        io_rail = float(np.max(vdd)) if isinstance(vdd, np.ndarray) else vdd
        sink_caps = arrays.segment_sum(
            arrays.input_fanout,
            self._w[arrays.input_fanout.indices] * arrays.input_fanout_cap)
        input_load = (arrays.input_self_plus_wire + arrays.input_fixed_cap
                      + sink_caps)
        return float(np.sum(0.5 * arrays.input_activity
                            * io_rail * io_rail * input_load))

    def _critical_delay(self) -> float:
        critical = 0.0
        if self._out_rows.size:
            worst = float(np.max(self._arrivals[self._out_rows]))
            if worst > critical:
                critical = worst
        return critical
