"""The reference engine: the scalar modules behind the Engine seam."""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.engine.base import Engine, EngineSizing
from repro.optimize.problem import OptimizationProblem
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing


class ScalarEngine(Engine):
    """Procedure 2 evaluation on the scalar reference modules.

    This engine *is* the ground truth: ``ArrayEngine`` results are
    checked against it to float round-off. It accepts canonical-order
    width vectors for interchangeability, converting them to the
    ``{name: width}`` maps the reference modules consume.
    """

    name = "scalar"

    def __init__(self, problem: OptimizationProblem,
                 width_method: str = "closed_form", bisect_steps: int = 24):
        super().__init__(problem)
        self.width_method = width_method
        self.bisect_steps = bisect_steps

    def _as_map(self, widths) -> Mapping[str, float]:
        if isinstance(widths, Mapping):
            return widths
        if isinstance(widths, np.ndarray):
            return {name: float(value)
                    for name, value in zip(self.problem.ctx.gates, widths)}
        value = float(widths)
        return {name: value for name in self.problem.ctx.gates}

    def size_widths(self, budgets: BudgetResult, vdd, vth, *,
                    warm=None) -> EngineSizing:
        assignment = size_widths(self.problem.ctx, budgets.budgets, vdd, vth,
                                 method=self.width_method,
                                 bisect_steps=self.bisect_steps,
                                 repair_ceiling=budgets.effective_cycle_time,
                                 warm=None if warm is None
                                 else self._as_map(warm))
        widths = dict(assignment.widths)
        return EngineSizing(feasible=assignment.feasible,
                            repaired=assignment.repaired_gates,
                            widths=widths,
                            materialize=lambda: widths)

    def sta(self, vdd, vth, widths) -> float:
        report = analyze_timing(self.problem.ctx, vdd, vth,
                                self._as_map(widths))
        return report.critical_delay

    def total_energy(self, vdd, vth, widths) -> Tuple[float, float]:
        report = total_energy(self.problem.ctx, vdd, vth,
                              self._as_map(widths), self.problem.frequency)
        return report.static, report.dynamic

    def widths_vector(self, source) -> np.ndarray:
        gates = self.problem.ctx.gates
        if isinstance(source, Mapping):
            return np.asarray([source[name] for name in gates], dtype=float)
        return np.full(len(gates), float(source))
