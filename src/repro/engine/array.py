"""The vectorized engine: :mod:`repro.fastpath` behind the Engine seam.

The :class:`ArrayContext` for a circuit is built once and cached per
:class:`~repro.context.CircuitContext` (weakly, so contexts stay
collectable); the engine's own job is order translation — the fastpath
indexes gates in reverse-topological processing order, while everything
crossing the public Engine API is in canonical ``ctx.gates`` order.
"""

from __future__ import annotations

import weakref
from typing import Mapping, Tuple

import numpy as np

from repro.context import CircuitContext
from repro.engine.base import Engine, EngineSizing
from repro.fastpath.arrays import ArrayContext
from repro.fastpath.evaluate import (
    fast_size_widths,
    fast_sta,
    fast_total_energy,
)
from repro.optimize.problem import OptimizationProblem
from repro.timing.budgeting import BudgetResult

_ARRAY_CACHE: "weakref.WeakKeyDictionary[CircuitContext, ArrayContext]" = (
    weakref.WeakKeyDictionary())


def array_context_for(ctx: CircuitContext) -> ArrayContext:
    """The (cached) :class:`ArrayContext` mirroring ``ctx``."""
    try:
        arrays = _ARRAY_CACHE.get(ctx)
        if arrays is None:
            arrays = ArrayContext(ctx)
            _ARRAY_CACHE[ctx] = arrays
        return arrays
    except TypeError:  # unweakrefable context (e.g. a test double)
        return ArrayContext(ctx)


class ArrayEngine(Engine):
    """Procedure 2 evaluation on the vectorized fastpath kernels.

    Handles per-gate Vdd/Vth vectors and runs budget repair inside the
    kernel — there is no scalar fallback anywhere in this engine.
    """

    name = "fast"

    def __init__(self, problem: OptimizationProblem,
                 width_method: str = "closed_form", bisect_steps: int = 24):
        super().__init__(problem)
        self.width_method = width_method
        self.bisect_steps = bisect_steps
        self.arrays = array_context_for(problem.ctx)
        # canonical (ctx.gates) position j lives at array row
        # _canonical[j]; x_internal[_canonical] = x_canonical and
        # x_canonical = x_internal[_canonical] are the two permutations.
        self._canonical = np.asarray(
            [self.arrays.index[name] for name in problem.ctx.gates],
            dtype=np.int64)
        self._budget_key: BudgetResult | None = None
        self._budget_vec: np.ndarray | None = None

    # -- order translation --------------------------------------------------

    def _budget_vector(self, budgets: BudgetResult) -> np.ndarray:
        if self._budget_key is not budgets:
            self._budget_vec = self.arrays.budgets_to_array(budgets.budgets)
            self._budget_key = budgets
        return self._budget_vec

    def _values(self, value):
        """A voltage argument in internal array order."""
        if isinstance(value, np.ndarray):
            out = np.empty(self.arrays.n_gates, dtype=float)
            out[self._canonical] = value
            return out
        return value  # scalars / mappings: the kernels normalize these

    def _internal_widths(self, widths) -> np.ndarray:
        if isinstance(widths, np.ndarray):
            out = np.empty(self.arrays.n_gates, dtype=float)
            out[self._canonical] = widths
            return out
        if isinstance(widths, Mapping):
            return self.arrays.widths_to_array(widths)
        return np.full(self.arrays.n_gates, float(widths))

    # -- Engine API ---------------------------------------------------------

    def size_widths(self, budgets: BudgetResult, vdd, vth, *,
                    warm=None) -> EngineSizing:
        result = fast_size_widths(self.arrays, self._budget_vector(budgets),
                                  self._values(vdd), self._values(vth),
                                  method=self.width_method,
                                  bisect_steps=self.bisect_steps,
                                  repair_ceiling=budgets.effective_cycle_time,
                                  warm=None if warm is None
                                  else self._internal_widths(warm))
        canonical = result.widths[self._canonical]
        gates = self.problem.ctx.gates
        return EngineSizing(
            feasible=result.feasible,
            repaired=result.repaired,
            widths=canonical,
            materialize=lambda: {name: float(value)
                                 for name, value in zip(gates, canonical)})

    def sta(self, vdd, vth, widths) -> float:
        critical, _ = fast_sta(self.arrays, self._values(vdd),
                               self._values(vth),
                               self._internal_widths(widths))
        return critical

    def total_energy(self, vdd, vth, widths) -> Tuple[float, float]:
        return fast_total_energy(self.arrays, self._values(vdd),
                                 self._values(vth),
                                 self._internal_widths(widths),
                                 self.problem.frequency)

    def widths_vector(self, source) -> np.ndarray:
        gates = self.problem.ctx.gates
        if isinstance(source, Mapping):
            return np.asarray([source[name] for name in gates], dtype=float)
        return np.full(len(gates), float(source))
