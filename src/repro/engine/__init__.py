"""Unified evaluation-engine layer (see :mod:`repro.engine.base`).

Every optimizer consumes Procedure 2's inner loop through this package:
:func:`make_engine` (or :meth:`repro.optimize.problem.OptimizationProblem
.evaluator`) resolves ``"auto"`` / ``"scalar"`` / ``"fast"`` to a
concrete :class:`Engine` and the :class:`Evaluator` objective wraps it
with the canonical evaluation counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.base import (
    ENGINE_CHOICES,
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    Engine,
    EngineEvaluation,
    EngineMeasurement,
    EngineSizing,
    Evaluator,
    fingerprint_engine_name,
    resolve_engine_name,
    use_engine,
)
if TYPE_CHECKING:  # annotation-only: breaks the engine <-> optimize cycle
    from repro.optimize.problem import OptimizationProblem

__all__ = [
    "ENGINE_CHOICES",
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "Engine",
    "EngineEvaluation",
    "EngineMeasurement",
    "EngineSizing",
    "Evaluator",
    "fingerprint_engine_name",
    "make_engine",
    "resolve_engine_name",
    "use_engine",
]


def make_engine(problem: OptimizationProblem, engine: str = "auto", *,
                width_method: str = "closed_form",
                bisect_steps: int = 24) -> Engine:
    """Resolve ``engine`` and construct the implementation."""
    name = resolve_engine_name(engine)
    if name == "fast":
        from repro.engine.array import ArrayEngine

        return ArrayEngine(problem, width_method=width_method,
                           bisect_steps=bisect_steps)
    if name == "batch":
        from repro.engine.batch import BatchEngine

        return BatchEngine(problem, width_method=width_method,
                           bisect_steps=bisect_steps)
    if name == "incremental":
        from repro.engine.incremental import IncrementalEngine

        return IncrementalEngine(problem, width_method=width_method,
                                 bisect_steps=bisect_steps)
    from repro.engine.scalar import ScalarEngine

    return ScalarEngine(problem, width_method=width_method,
                        bisect_steps=bisect_steps)
