"""The evaluation-engine seam: one protocol, two implementations.

Procedure 2's inner loop — budgets → minimum-width sizing → STA → energy
(§4.3, eqs. A1–A3) — is what every optimizer in this repository spends
its time on. :class:`Engine` is the single seam through which they all
evaluate it:

* :class:`~repro.engine.scalar.ScalarEngine` wraps the scalar reference
  modules (``optimize.width_search``, ``timing.sta``, ``power.energy``),
* :class:`~repro.engine.array.ArrayEngine` runs the vectorized
  :mod:`repro.fastpath` kernels, including per-gate Vdd/Vth vectors and
  in-engine budget repair, so multi-Vth / multi-Vdd searches and the
  annealer stay vectorized with **no scalar fallback**,
* :class:`~repro.engine.incremental.IncrementalEngine` wraps the array
  engine and adds a stateful delta-evaluation API
  (``begin``/``apply_move``/``apply_voltage``) whose results are
  bit-identical to full evaluation — the annealer's per-move fastpath.

**Parity contract.** For any (budgets, Vdd, Vth) point the two engines
agree on the feasibility verdict and, on feasible points, on energies
and critical delays to float round-off (relative ~1e-9; the engines sum
identical terms in different associations). ``tests/test_fastpath.py``
and ``tests/test_engine_parity.py`` enforce this on every benchmark
circuit and on randomized generator circuits, including corners that
exercise budget repair.

**Selection.** ``"scalar"``, ``"fast"`` and ``"incremental"`` pick an
engine explicitly;
``"auto"`` (the default everywhere) resolves via the ambient
:func:`use_engine` override, then the ``REPRO_ENGINE`` environment
variable, then ``"scalar"``. Checkpoint fingerprints record the
*resolved* name so a checkpoint can never silently resume under a
different engine.

All widths crossing this API — vectors returned by
:meth:`Engine.widths_vector`, handles in :class:`EngineSizing` — are in
canonical ``ctx.gates`` order; per-gate mappings are accepted anywhere
widths or voltages are.
"""

from __future__ import annotations

import abc
import contextlib
import math
import os
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.errors import OptimizationError
from repro.obs.instrument import (
    BATCH_FALLBACK,
    FEASIBLE_POINTS,
    OBJECTIVE_EVALUATIONS,
    WARM_STARTS,
    engine_evaluations_metric,
)
from repro.obs.metrics import current_metrics
from repro.timing.budgeting import BudgetResult

if TYPE_CHECKING:  # annotation-only: breaks the engine <-> optimize cycle
    from repro.optimize.problem import OptimizationProblem

#: Concrete engine implementations.
ENGINE_NAMES: Tuple[str, ...] = ("scalar", "fast", "incremental", "batch")
#: Accepted ``engine=`` settings values (``"auto"`` defers resolution).
ENGINE_CHOICES: Tuple[str, ...] = ("auto",) + ENGINE_NAMES

#: Environment variable consulted by ``"auto"`` resolution.
ENGINE_ENV_VAR = "REPRO_ENGINE"

_ENGINE_OVERRIDE: ContextVar[Optional[str]] = ContextVar(
    "repro_engine_override", default=None)


def _validate_choice(name: str, source: str) -> str:
    if name not in ENGINE_CHOICES:
        raise OptimizationError(
            f"unknown engine {name!r} (from {source}); "
            f"choose from {', '.join(ENGINE_CHOICES)}")
    return name


@contextlib.contextmanager
def use_engine(name: Optional[str]) -> Iterator[None]:
    """Ambient engine override for ``engine="auto"`` resolution.

    ``None`` installs nothing (a convenience for optional CLI flags).
    The override outranks ``REPRO_ENGINE``; an explicit non-``auto``
    ``engine=`` setting outranks both.
    """
    if name is None:
        yield
        return
    token = _ENGINE_OVERRIDE.set(_validate_choice(name, "use_engine"))
    try:
        yield
    finally:
        _ENGINE_OVERRIDE.reset(token)


def resolve_engine_name(requested: str = "auto") -> str:
    """The concrete engine a request resolves to (one of ENGINE_NAMES)."""
    _validate_choice(requested, "settings")
    if requested != "auto":
        return requested
    override = _ENGINE_OVERRIDE.get()
    if override is not None and override != "auto":
        return override
    env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    if env:
        _validate_choice(env, f"${ENGINE_ENV_VAR}")
        if env != "auto":
            return env
    return "scalar"


def fingerprint_engine_name(name: str) -> str:
    """The engine name as recorded in checkpoint / serve fingerprints.

    The batch engine is the array engine with a design axis — bit-
    identical per row, batching a pure execution detail — so it
    fingerprints as ``"fast"``: checkpoints, resumes and serve cache
    keys are interchangeable between the two (gated by
    ``ci/check_batch_parity.py``). Every other engine fingerprints as
    itself.
    """
    return "fast" if name == "batch" else name


@dataclass(frozen=True)
class EngineSizing:
    """One width-sizing outcome, engine-agnostic.

    ``widths`` is the engine-native handle (a mapping for the scalar
    engine, a canonical-order vector for the array engine) — cheap to
    produce and accepted by the same engine's ``sta``/``total_energy``/
    ``measure``. :meth:`widths_map` materializes a ``{name: width}``
    dict; callers should do that only for results they keep.
    """

    feasible: bool
    #: Gates whose budgets were repaired (deficit moved onto drivers).
    repaired: Tuple[str, ...]
    widths: object
    materialize: Callable[[], Dict[str, float]] = field(repr=False)

    def widths_map(self) -> Dict[str, float]:
        return self.materialize()


class EngineMeasurement(NamedTuple):
    """Energy + timing of one concrete design point."""

    static: float
    dynamic: float
    critical_delay: float

    @property
    def energy(self) -> float:
        return self.static + self.dynamic


@dataclass(frozen=True)
class EngineEvaluation:
    """One objective evaluation: budgets → sizing → energy.

    ``energy`` is ``inf`` (and ``sizing`` is ``None``) when the sizing
    was infeasible at this corner.
    """

    energy: float
    static: float
    dynamic: float
    feasible: bool
    sizing: Optional[EngineSizing]

    def widths_map(self) -> Dict[str, float]:
        if self.sizing is None:
            raise OptimizationError(
                "no widths: the evaluation was infeasible")
        return self.sizing.widths_map()


_INFEASIBLE = EngineEvaluation(energy=math.inf, static=math.inf,
                               dynamic=math.inf, feasible=False, sizing=None)


class Engine(abc.ABC):
    """One implementation of the Procedure 2 evaluation kernel.

    Voltages (``vdd``/``vth``) are scalars, per-gate mappings, or
    canonical-order vectors throughout.
    """

    name: ClassVar[str]
    #: True when the engine evaluates design batches natively (one
    #: vectorized kernel invocation for B rows). Engines without it
    #: still serve the ``*_batch`` API through a row-at-a-time fallback
    #: loop (counted by ``engine.batch.fallback``).
    supports_batch: ClassVar[bool] = False

    def __init__(self, problem: OptimizationProblem):
        self.problem = problem

    @abc.abstractmethod
    def size_widths(self, budgets: BudgetResult, vdd, vth, *,
                    warm=None) -> EngineSizing:
        """Minimum-width sizing under ``budgets`` (budget repair on).

        ``warm`` optionally carries a previously-solved width assignment
        (engine-native handle or ``{name: width}`` map) used to seed the
        per-gate bisection brackets of ``width_method="bisect"``; the
        closed-form solver is exact and ignores it. Warm starts change
        the bisection's discretization (results stay within the solver's
        bracket tolerance but are not bit-identical), so they are opt-in
        and excluded from the cross-engine parity gates.
        """

    @abc.abstractmethod
    def sta(self, vdd, vth, widths) -> float:
        """Critical delay of a concrete design point (s)."""

    @abc.abstractmethod
    def total_energy(self, vdd, vth, widths) -> Tuple[float, float]:
        """``(static, dynamic)`` energy per cycle (J), eqs. A1 + A2."""

    @abc.abstractmethod
    def widths_vector(self, source: "float | Mapping[str, float]"):
        """A mutable per-gate width vector in canonical ``ctx.gates``
        order, seeded from a scalar or a ``{name: width}`` map."""

    def measure(self, vdd, vth, widths) -> EngineMeasurement:
        """Energy and critical delay of one concrete design point.

        **Reference evaluation order**: energy first, then STA. Every
        cost built on measurements (the annealer's ``_cost``, the
        incremental engine's refresh) delegates to this method or
        reproduces this order, so instrumented call sequences, counter
        totals and profiling attributions stay comparable across
        engines; implementations and wrappers must preserve it.
        """
        static, dynamic = self.total_energy(vdd, vth, widths)
        return EngineMeasurement(static=static, dynamic=dynamic,
                                 critical_delay=self.sta(vdd, vth, widths))

    def evaluate(self, budgets: BudgetResult, vdd, vth, *,
                 delay_vth=None, energy_vth=None,
                 warm=None) -> EngineEvaluation:
        """The optimizers' objective: size at ``(vdd, delay_vth)``, then
        energy at ``(vdd, energy_vth)`` (both default to ``vth``; the
        split serves the variation-aware corners of Figure 2a).
        ``warm`` seeds the bisection brackets (see :meth:`size_widths`).
        """
        delay_vth = vth if delay_vth is None else delay_vth
        energy_vth = vth if energy_vth is None else energy_vth
        if warm is None:
            sizing = self.size_widths(budgets, vdd, delay_vth)
        else:
            sizing = self.size_widths(budgets, vdd, delay_vth, warm=warm)
        if not sizing.feasible:
            return _INFEASIBLE
        static, dynamic = self.total_energy(vdd, energy_vth, sizing.widths)
        return EngineEvaluation(energy=static + dynamic, static=static,
                                dynamic=dynamic, feasible=True,
                                sizing=sizing)

    # -- batched API (row-at-a-time fallback; see BatchEngine) ---------------

    def measure_batch(self, vdd_rows, vth_rows,
                      widths_rows) -> "list[EngineMeasurement]":
        """Measure B design points (rows are ordinary ``measure`` args).

        The default implementation is the row-at-a-time loop — results
        are *by construction* what the caller would have computed
        without batching. Engines with ``supports_batch`` override this
        with one vectorized invocation whose rows are bit-identical to
        the loop.
        """
        current_metrics().incr(BATCH_FALLBACK)
        return [self.measure(vdd, vth, widths)
                for vdd, vth, widths in zip(vdd_rows, vth_rows, widths_rows)]

    def evaluate_batch(self, budgets: BudgetResult, vdd_rows, vth_rows, *,
                       delay_vth_rows=None,
                       energy_vth_rows=None) -> "list[EngineEvaluation]":
        """Evaluate B objective corners (rows are ``evaluate`` args).

        Same fallback contract as :meth:`measure_batch`; warm starts are
        deliberately absent (they chain row N's sizing into row N+1's,
        which a batch cannot honour).
        """
        current_metrics().incr(BATCH_FALLBACK)
        count = len(vdd_rows)
        delay_vth_rows = delay_vth_rows or [None] * count
        energy_vth_rows = energy_vth_rows or [None] * count
        return [self.evaluate(budgets, vdd, vth, delay_vth=delay_vth,
                              energy_vth=energy_vth)
                for vdd, vth, delay_vth, energy_vth
                in zip(vdd_rows, vth_rows, delay_vth_rows,
                       energy_vth_rows)]


class Evaluator:
    """The shared objective factory product: one callable per search.

    Binds (problem, budgets, engine) plus the optional Vth bias hooks,
    counts evaluations and feasible points, and increments the canonical
    metrics — :data:`~repro.obs.instrument.OBJECTIVE_EVALUATIONS`,
    :data:`~repro.obs.instrument.FEASIBLE_POINTS`, and the engine-labeled
    ``engine.<name>.evaluations`` — in exactly one place, replacing the
    per-optimizer hand-rolled evaluate loops.
    """

    def __init__(self, problem: OptimizationProblem, engine: Engine,
                 budgets: BudgetResult,
                 delay_vth_bias: Callable[[float], float] | None = None,
                 energy_vth_bias: Callable[[float], float] | None = None,
                 warm_starts: bool = False):
        self.problem = problem
        self.engine = engine
        self.budgets = budgets
        self.delay_vth_bias = delay_vth_bias
        self.energy_vth_bias = energy_vth_bias
        #: When set, each sizing seeds its bisection brackets from the
        #: widths of the nearest already-solved point — the previous
        #: feasible evaluation through this evaluator (evaluation order
        #: is the neighborhood: grid scans visit adjacent cells
        #: consecutively). See :meth:`Engine.size_widths`.
        self.warm_starts = warm_starts
        self._warm_hint = None
        self._prefetched: Dict[Tuple[float, float], EngineEvaluation] = {}
        self.evaluations = 0
        self.feasible_points = 0
        self._engine_metric = engine_evaluations_metric(engine.name)

    def prefetch(self, corners) -> int:
        """Pre-evaluate scalar ``(vdd, vth)`` corners in one batched
        engine call; subsequent ``__call__``\\ s consume the cache.

        A pure execution detail: the per-call counters, warm-start
        bookkeeping and returned evaluations are exactly those of the
        unprefetched loop (the batch engine is bit-identical per row).
        No-ops (returns 0) when the engine lacks ``supports_batch``,
        when warm starts are active (they chain sizings call to call),
        or when fewer than two new corners remain.
        """
        if not self.engine.supports_batch or self.warm_starts:
            return 0
        fresh = []
        for corner in corners:
            vdd, vth = float(corner[0]), float(corner[1])
            if (vdd, vth) not in self._prefetched \
                    and (vdd, vth) not in {(c[0], c[1]) for c in fresh}:
                fresh.append((vdd, vth))
        if len(fresh) < 2:
            return 0
        delay_rows = [vth if self.delay_vth_bias is None
                      else self.delay_vth_bias(vth) for _, vth in fresh]
        energy_rows = [vth if self.energy_vth_bias is None
                       else self.energy_vth_bias(vth) for _, vth in fresh]
        evaluations = self.engine.evaluate_batch(
            self.budgets, [vdd for vdd, _ in fresh],
            [vth for _, vth in fresh], delay_vth_rows=delay_rows,
            energy_vth_rows=energy_rows)
        self._prefetched.update(zip(fresh, evaluations))
        return len(fresh)

    def __call__(self, vdd, vth) -> EngineEvaluation:
        self.evaluations += 1
        metrics = current_metrics()
        metrics.incr(OBJECTIVE_EVALUATIONS)
        metrics.incr(self._engine_metric)
        try:
            evaluation = self._prefetched.pop((float(vdd), float(vth)))
        except (KeyError, TypeError):
            evaluation = None
        if evaluation is not None:
            if evaluation.feasible:
                self.feasible_points += 1
                metrics.incr(FEASIBLE_POINTS)
                if self.warm_starts:
                    self._warm_hint = evaluation.sizing.widths
            return evaluation
        delay_vth = (vth if self.delay_vth_bias is None
                     else self.delay_vth_bias(vth))
        energy_vth = (vth if self.energy_vth_bias is None
                      else self.energy_vth_bias(vth))
        warm = self._warm_hint if self.warm_starts else None
        if warm is not None:
            metrics.incr(WARM_STARTS)
        evaluation = self.engine.evaluate(self.budgets, vdd, vth,
                                          delay_vth=delay_vth,
                                          energy_vth=energy_vth,
                                          warm=warm)
        if evaluation.feasible:
            self.feasible_points += 1
            metrics.incr(FEASIBLE_POINTS)
            if self.warm_starts:
                self._warm_hint = evaluation.sizing.widths
        return evaluation
