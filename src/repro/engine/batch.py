"""The batched engine: the array engine plus a native design axis.

:class:`BatchEngine` is an :class:`~repro.engine.array.ArrayEngine` —
every single-design call behaves identically — that additionally serves
:meth:`measure_batch` / :meth:`evaluate_batch` with **one** vectorized
kernel invocation over B design rows (``repro.fastpath.batch``), each
row bit-identical (``==``) to the looped single-design call.

Because batching is provably a pure execution detail, the engine
fingerprints as ``"fast"`` (see
:func:`repro.engine.base.fingerprint_engine_name`): checkpoints, serve
cache keys and argmins are interchangeable with the array engine, which
``ci/check_batch_parity.py`` gates.

Batches must be *uniform*: all rows scalar voltages, or all rows
per-gate (mappings / canonical vectors). Mixed batches, and batches
under warm-started sizing, quietly take the base class's row-at-a-time
fallback loop — correctness never depends on batchability.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.array import ArrayEngine
from repro.engine.base import (
    EngineEvaluation,
    EngineMeasurement,
    EngineSizing,
    _INFEASIBLE,
)
from repro.fastpath.batch import (
    BatchValue,
    batch_currents,
    batch_sta,
    batch_total_energy,
)
from repro.fastpath.evaluate import fast_size_widths
from repro.obs.instrument import BATCH_CALLS, BATCH_ROWS
from repro.obs.metrics import current_metrics
from repro.timing.budgeting import BudgetResult


class BatchEngine(ArrayEngine):
    """Vectorized multi-design evaluation behind the Engine seam."""

    name = "batch"
    supports_batch = True

    # -- row normalization ---------------------------------------------------

    def _batch_voltage(self, rows: Sequence) -> Optional[BatchValue]:
        """A uniform voltage batch, or None (mixed → fallback).

        All-scalar rows become per-row scalars ``(B, 1)`` (each row
        reproduces the looped scalar-voltage mode); all-per-gate rows
        (mappings or canonical ``(n,)`` vectors) become ``(B, n)`` in
        internal order. A single shared scalar/mapping may also be
        passed pre-broadcast by the caller via ``[value] * B``.
        """
        if all(isinstance(row, (int, float)) for row in rows):
            values = np.asarray([[float(row)] for row in rows])
            return BatchValue(values, per_gate=False)
        if all(isinstance(row, (Mapping, np.ndarray)) for row in rows):
            stacked = np.empty((len(rows), self.arrays.n_gates))
            for b, row in enumerate(rows):
                stacked[b] = self._values(row) if isinstance(row, np.ndarray) \
                    else self.arrays.values_to_array(row)
            return BatchValue(stacked, per_gate=True)
        return None

    def _batch_widths(self, rows: Sequence) -> Optional[np.ndarray]:
        """A ``(B, n)`` (or shared ``(1, n)``) internal-order width
        batch, or None when rows are not uniformly width-like."""
        first = rows[0]
        if all(row is first for row in rows):
            return self._internal_widths(first).reshape(1, -1)
        try:
            stacked = np.empty((len(rows), self.arrays.n_gates))
            for b, row in enumerate(rows):
                stacked[b] = self._internal_widths(row)
        except (TypeError, KeyError, ValueError):
            return None
        return stacked

    def _observe(self, batch: int) -> None:
        metrics = current_metrics()
        metrics.incr(BATCH_CALLS)
        metrics.observe(BATCH_ROWS, float(batch))

    # -- batched API ---------------------------------------------------------

    def measure_batch(self, vdd_rows, vth_rows,
                      widths_rows) -> List[EngineMeasurement]:
        vdd = self._batch_voltage(vdd_rows)
        vth = self._batch_voltage(vth_rows)
        widths = self._batch_widths(widths_rows)
        if vdd is None or vth is None or widths is None:
            return super().measure_batch(vdd_rows, vth_rows, widths_rows)
        batch = len(vdd_rows)
        self._observe(batch)
        # Reference evaluation order (see Engine.measure): energy, STA.
        # Both kernels bill currents for the same (vdd, vth) pairs, so
        # compute them once and share — same doubles, half the model
        # calls (the dominant cost when every row is a distinct pair).
        currents = batch_currents(self.arrays, vdd, vth)
        static, dynamic = batch_total_energy(
            self.arrays, vdd, vth, widths, self.problem.frequency, batch,
            currents=currents)
        critical, _ = batch_sta(self.arrays, vdd, vth, widths, batch,
                                currents=currents)
        return [EngineMeasurement(static=float(static[b]),
                                  dynamic=float(dynamic[b]),
                                  critical_delay=float(critical[b]))
                for b in range(batch)]

    def evaluate_batch(self, budgets: BudgetResult, vdd_rows, vth_rows, *,
                       delay_vth_rows=None,
                       energy_vth_rows=None) -> List[EngineEvaluation]:
        batch = len(vdd_rows)
        delay_vth_rows = ([vth for vth in vth_rows]
                          if delay_vth_rows is None else
                          [vth if delay is None else delay
                           for vth, delay in zip(vth_rows, delay_vth_rows)])
        energy_vth_rows = ([vth for vth in vth_rows]
                           if energy_vth_rows is None else
                           [vth if energy is None else energy
                            for vth, energy in zip(vth_rows,
                                                   energy_vth_rows)])
        vdd = self._batch_voltage(vdd_rows)
        delay_vth = self._batch_voltage(delay_vth_rows)
        energy_vth = self._batch_voltage(energy_vth_rows)
        if vdd is None or delay_vth is None or energy_vth is None:
            return super().evaluate_batch(budgets, vdd_rows, vth_rows,
                                          delay_vth_rows=delay_vth_rows,
                                          energy_vth_rows=energy_vth_rows)
        self._observe(batch)
        sizing = fast_size_widths(
            self.arrays, self._budget_vector(budgets), vdd, delay_vth,
            repair_ceiling=budgets.effective_cycle_time,
            method=self.width_method, bisect_steps=self.bisect_steps)

        feasible_rows = np.flatnonzero(sizing.feasible)
        results: List[EngineEvaluation] = [_INFEASIBLE] * batch
        if len(feasible_rows):
            w_sub = np.ascontiguousarray(sizing.widths[feasible_rows])
            static, dynamic = batch_total_energy(
                self.arrays, vdd.take(feasible_rows),
                energy_vth.take(feasible_rows), w_sub,
                self.problem.frequency, len(feasible_rows))
            gates = self.problem.ctx.gates
            for k, b in enumerate(feasible_rows):
                canonical = sizing.widths[b][self._canonical]
                results[b] = EngineEvaluation(
                    energy=float(static[k]) + float(dynamic[k]),
                    static=float(static[k]), dynamic=float(dynamic[k]),
                    feasible=True,
                    sizing=EngineSizing(
                        feasible=True, repaired=sizing.repaired[b],
                        widths=canonical,
                        materialize=_materializer(gates, canonical)))
        return results


def _materializer(gates: Tuple[str, ...], canonical: np.ndarray):
    return lambda: {name: float(value)
                    for name, value in zip(gates, canonical)}
