"""Per-gate and network energy evaluation (Appendix A.1).

All energies are *per clock cycle* (joules). Power follows as
``P = E * f_c``; the paper switches freely between the two since ``f_c``
is a constant of each experiment.

The static energy of a gate charges the supply for one full cycle through
its off devices: ``E_si = Vdd * w_i * I_off(Vth_i) / f_c`` (eq. A1). The
dynamic energy switches the output load ``a_i`` times per cycle:
``E_di = 1/2 * a_i * Vdd^2 * C_i`` with ``C_i`` from eq. A2 — the gate's
own (width-scaled) parasitics plus every fanout gate's (width-scaled)
input capacitance plus the net's interconnect capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.context import CircuitContext
from repro.errors import ReproError
from repro.obs.instrument import ENERGY_EVALUATIONS, seam
from repro.technology import leakage


def _vth_for(vth: float | Mapping[str, float], name: str) -> float:
    if isinstance(vth, Mapping):
        try:
            return vth[name]
        except KeyError:
            raise ReproError(f"no Vth supplied for gate {name!r}") from None
    return vth


def _vdd_for(vdd: float | Mapping[str, float], name: str) -> float:
    if isinstance(vdd, Mapping):
        try:
            return vdd[name]
        except KeyError:
            raise ReproError(f"no Vdd supplied for gate {name!r}") from None
    return vdd


def _io_rail(vdd: float | Mapping[str, float]) -> float:
    """Rail assumed for primary-input nets: the highest rail in use."""
    if isinstance(vdd, Mapping):
        if not vdd:
            raise ReproError("empty Vdd mapping")
        return max(vdd.values())
    return vdd


def static_energy_of_gate(ctx: CircuitContext, name: str, vdd: float,
                          vth: float, width: float,
                          frequency: float) -> float:
    """Eq. A1: ``E_si = Vdd * w_i * I_off / f_c`` (J/cycle).

    The leakage path sees the full rail, so ``I_off`` is evaluated at
    ``Vds = Vdd``.
    """
    if frequency <= 0.0:
        raise ReproError(f"frequency must be > 0, got {frequency}")
    if width <= 0.0:
        raise ReproError(f"gate {name!r}: width must be > 0, got {width}")
    off = leakage.off_current_per_width(ctx.tech, vth, vds=vdd)
    return vdd * width * off / frequency


def dynamic_energy_of_gate(ctx: CircuitContext, name: str,
                           vdd: float | Mapping[str, float],
                           widths: Mapping[str, float]) -> float:
    """Eq. A2: ``E_di = 1/2 * a_i * Vdd^2 * C_switched`` (J/cycle).

    With a per-gate ``vdd`` mapping the output swing is the driving
    gate's own rail; primary-input nets swing at the module's IO rail
    (the highest rail in the mapping).
    """
    info = ctx.info(name)
    load = ctx.output_load(name, widths)
    if ctx.network.gate(name).is_input:
        rail = _io_rail(vdd)
    else:
        rail = _vdd_for(vdd, name)
    return 0.5 * info.activity * rail * rail * load


@dataclass(frozen=True)
class EnergyReport:
    """Network-level energy summary at one design point."""

    network_name: str
    frequency: float
    vdd: float | Mapping[str, float]
    static: float
    dynamic: float
    per_gate_static: Mapping[str, float]
    per_gate_dynamic: Mapping[str, float]

    @property
    def total(self) -> float:
        return self.static + self.dynamic

    @property
    def static_power(self) -> float:
        return self.static * self.frequency

    @property
    def dynamic_power(self) -> float:
        return self.dynamic * self.frequency

    @property
    def total_power(self) -> float:
        return self.total * self.frequency

    @property
    def static_fraction(self) -> float:
        total = self.total
        return self.static / total if total > 0.0 else 0.0


def total_energy(ctx: CircuitContext, vdd: float | Mapping[str, float],
                 vth: float | Mapping[str, float],
                 widths: Mapping[str, float],
                 frequency: float) -> EnergyReport:
    """Evaluate eqs. A1 + A2 over every logic gate of the circuit.

    Eq. A2 books each gate input's capacitance under the *driving* gate,
    so primary-input nets (whose drivers are module ports) carry their own
    A2 term with a fixed unit driver width — every piece of switched
    capacitance in the module is counted exactly once.
    """
    per_static: Dict[str, float] = {}
    per_dynamic: Dict[str, float] = {}
    with seam("energy", counter=ENERGY_EVALUATIONS):
        for name in ctx.gates:
            width = widths.get(name)
            if width is None:
                raise ReproError(f"no width supplied for gate {name!r}")
            per_static[name] = static_energy_of_gate(
                ctx, name, _vdd_for(vdd, name), _vth_for(vth, name), width,
                frequency)
            per_dynamic[name] = dynamic_energy_of_gate(ctx, name, vdd, widths)
        for name in ctx.network.inputs:
            per_dynamic[name] = dynamic_energy_of_gate(ctx, name, vdd, widths)
    return EnergyReport(network_name=ctx.network.name, frequency=frequency,
                        vdd=vdd,
                        static=sum(per_static.values()),
                        dynamic=sum(per_dynamic.values()),
                        per_gate_static=per_static,
                        per_gate_dynamic=per_dynamic)
