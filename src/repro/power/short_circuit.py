"""Short-circuit dissipation (the paper's "next version" extension).

Appendix A.1 neglects the short-circuit component, citing Veendrick [12]:
under typical input rise times and output loads it is an order of
magnitude below the switching energy — "however, these are being
incorporated in the next version of the optimization tool". This module
is that next version's model.

Veendrick's analysis for an unloaded inverter gives

    E_sc per transition = (beta/12) * (Vdd - 2*Vth)^3 * tau / Vdd

with ``tau`` the input transition time. We adapt it to the alpha-power
devices of this library: during an input ramp both networks conduct while
``Vth < Vin < Vdd - Vth``; the peak contention current is the
transregional drain current at ``Vgs = Vdd/2`` and the conduction window
is the fraction ``(Vdd - 2*Vth)/Vdd`` of the ramp, giving

    E_sc = a_i * k_sc * I_D(Vdd/2, Vth) * w_i * tau_in
           * max(Vdd - 2*Vth, 0) / Vdd

per cycle (``k_sc`` a fitted shape factor, 1/6 by default — the triangle
approximation of the current waveform). Two properties the paper's
argument relies on fall out directly:

* ``E_sc = 0`` whenever ``Vdd <= 2*Vth`` — notably, joint low-power
  optima sit close to this boundary, so the neglected term is small
  exactly where the paper operates;
* ``E_sc`` scales with the input transition time, which Procedure 1
  bounds by the driver's delay budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.context import CircuitContext
from repro.errors import ReproError
from repro.technology import mosfet

#: Triangle-waveform shape factor for the contention current.
DEFAULT_SHAPE_FACTOR = 1.0 / 6.0


def _vth_for(vth: float | Mapping[str, float], name: str) -> float:
    if isinstance(vth, Mapping):
        return vth[name]
    return vth


def short_circuit_energy_of_gate(ctx: CircuitContext, name: str, vdd: float,
                                 vth: float, width: float,
                                 input_transition_time: float,
                                 shape_factor: float = DEFAULT_SHAPE_FACTOR
                                 ) -> float:
    """Short-circuit energy of one gate per cycle (J).

    ``input_transition_time`` is the transition time of the slowest input
    (callers typically use the driver's delay budget, the bound
    Procedure 1 guarantees).
    """
    if input_transition_time < 0.0:
        raise ReproError(
            f"gate {name!r}: input_transition_time must be >= 0, got "
            f"{input_transition_time}")
    if width <= 0.0:
        raise ReproError(f"gate {name!r}: width must be > 0, got {width}")
    window = vdd - 2.0 * vth
    if window <= 0.0:
        return 0.0
    info = ctx.info(name)
    contention = mosfet.drain_current_per_width(ctx.tech, 0.5 * vdd, vth,
                                                vds=0.5 * vdd)
    return (info.activity * shape_factor * contention * width
            * input_transition_time * window / vdd)


@dataclass(frozen=True)
class ShortCircuitReport:
    """Network-level short-circuit summary at one design point."""

    network_name: str
    total: float
    per_gate: Mapping[str, float]

    def fraction_of(self, dynamic_energy: float) -> float:
        """Short-circuit energy as a fraction of the switching energy."""
        if dynamic_energy <= 0.0:
            return 0.0
        return self.total / dynamic_energy


def total_short_circuit_energy(ctx: CircuitContext, vdd: float,
                               vth: float | Mapping[str, float],
                               widths: Mapping[str, float],
                               transition_times: Mapping[str, float],
                               shape_factor: float = DEFAULT_SHAPE_FACTOR
                               ) -> ShortCircuitReport:
    """Sum the short-circuit component over every logic gate.

    ``transition_times`` maps each gate to the transition time of its
    slowest input; the canonical choice is the maximum Procedure 1 budget
    over the gate's drivers (see :func:`transition_times_from_budgets`).
    """
    per_gate: Dict[str, float] = {}
    for name in ctx.gates:
        width = widths.get(name)
        if width is None:
            raise ReproError(f"no width supplied for gate {name!r}")
        tau = transition_times.get(name, 0.0)
        per_gate[name] = short_circuit_energy_of_gate(
            ctx, name, vdd, _vth_for(vth, name), width, tau,
            shape_factor=shape_factor)
    return ShortCircuitReport(network_name=ctx.network.name,
                              total=sum(per_gate.values()),
                              per_gate=per_gate)


def transition_times_from_budgets(ctx: CircuitContext,
                                  budgets: Mapping[str, float]
                                  ) -> Dict[str, float]:
    """Per-gate input transition times bounded by the drivers' budgets.

    Primary-input drivers are ideal (zero transition time), matching the
    delay model's treatment of module ports.
    """
    times: Dict[str, float] = {}
    for name in ctx.gates:
        info = ctx.info(name)
        tau = 0.0
        for fanin in info.fanin_names:
            if fanin in budgets:
                tau = max(tau, budgets[fanin])
        times[name] = tau
    return times
