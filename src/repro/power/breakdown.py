"""Diagnostic energy breakdowns.

Splits a design point's energy the ways the paper's discussion does:
static vs dynamic (§3's "comparable components at the optimum"), device vs
interconnect capacitance, and per-gate rankings for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.context import CircuitContext
from repro.power.energy import EnergyReport, total_energy


@dataclass(frozen=True)
class EnergyBreakdown:
    """Decomposition of one design point's energy (J/cycle)."""

    report: EnergyReport
    #: Switching energy attributable to interconnect capacitance.
    wire_dynamic: float
    #: Switching energy attributable to device capacitance.
    device_dynamic: float
    #: Gates ranked by total (static + dynamic) energy, descending.
    hottest_gates: Tuple[Tuple[str, float], ...]

    @property
    def static_to_dynamic_ratio(self) -> float:
        if self.report.dynamic <= 0.0:
            return float("inf") if self.report.static > 0.0 else 0.0
        return self.report.static / self.report.dynamic

    @property
    def wire_fraction(self) -> float:
        if self.report.dynamic <= 0.0:
            return 0.0
        return self.wire_dynamic / self.report.dynamic


def energy_breakdown(ctx: CircuitContext, vdd: float | Mapping[str, float],
                     vth: float | Mapping[str, float],
                     widths: Mapping[str, float], frequency: float,
                     top: int = 10) -> EnergyBreakdown:
    """Full decomposition at one design point (per-gate Vdd supported)."""
    from repro.power.energy import _io_rail, _vdd_for

    report = total_energy(ctx, vdd, vth, widths, frequency)

    wire_dynamic = 0.0
    for name in list(ctx.gates) + list(ctx.network.inputs):
        info = ctx.info(name)
        rail = _io_rail(vdd) if ctx.network.gate(name).is_input \
            else _vdd_for(vdd, name)
        wire_dynamic += 0.5 * info.activity * rail * rail * info.wire_cap
    device_dynamic = report.dynamic - wire_dynamic

    totals = {}
    for name in ctx.gates:
        totals[name] = (report.per_gate_static.get(name, 0.0)
                        + report.per_gate_dynamic.get(name, 0.0))
    hottest = tuple(sorted(totals.items(), key=lambda item: -item[1])[:top])

    return EnergyBreakdown(report=report, wire_dynamic=wire_dynamic,
                           device_dynamic=device_dynamic,
                           hottest_gates=hottest)
