"""Static and dynamic energy models (Appendix A.1).

* ``E_si = Vdd * w_i * I_off / f_c`` — leakage energy per cycle (A1),
* ``E_di = 1/2 * a_i * Vdd^2 * C_switched,i`` — switching energy (A2),

with ``C_switched`` assembled from the gate's own parasitics, its fanout
gates' input capacitances and the net's interconnect capacitance. The
short-circuit component is neglected in the paper's objective (an order
of magnitude below switching energy under typical conditions [12]) but
implemented here as the paper's announced "next version" extension
(:mod:`repro.power.short_circuit`).
"""

from repro.power.energy import (
    EnergyReport,
    dynamic_energy_of_gate,
    static_energy_of_gate,
    total_energy,
)
from repro.power.breakdown import EnergyBreakdown, energy_breakdown
from repro.power.state_leakage import (
    StateLeakageReport,
    expected_stack_factor,
    state_dependent_leakage,
)
from repro.power.short_circuit import (
    ShortCircuitReport,
    short_circuit_energy_of_gate,
    total_short_circuit_energy,
    transition_times_from_budgets,
)

__all__ = [
    "EnergyReport",
    "dynamic_energy_of_gate",
    "static_energy_of_gate",
    "total_energy",
    "EnergyBreakdown",
    "energy_breakdown",
    "ShortCircuitReport",
    "short_circuit_energy_of_gate",
    "total_short_circuit_energy",
    "transition_times_from_budgets",
    "StateLeakageReport",
    "expected_stack_factor",
    "state_dependent_leakage",
]
