"""State-dependent leakage: the stack effect (refinement of eq. A1).

Eq. A1 charges every gate the single-device off current ``w·I_off``. In
reality the leakage of a series stack depends on the input state: with
two or more series devices off, the intermediate node rises, the bottom
device gains reverse body bias and negative ``Vgs``, and the stack leaks
roughly an order of magnitude less (the classic *stack effect* the
paper's low-power lineage exploits).

This module computes the **expected** leakage of each gate under its
input-state distribution (from the activity estimator's signal
probabilities, inputs independent):

* For the series network of an AND/NAND (nmos stack) or OR/NOR (pmos
  stack), the number of off devices ``k`` follows a Bernoulli sum over
  the input probabilities; leakage scales by ``stack_factor^(k-1)`` for
  ``k >= 1`` (and by 1 when no series device is off — then the parallel
  network leaks instead, conservatively charged at the full rate).
* Inverters/buffers have no stack: factor 1.

The result is a per-gate multiplier in ``(0, 1]`` applied to eq. A1 —
always a *reduction*, so the paper's formulation is the conservative
upper bound (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.activity.transition_density import ActivityEstimate
from repro.context import CircuitContext
from repro.errors import ReproError
from repro.netlist.gates import GateType
from repro.power.energy import EnergyReport, total_energy

#: Per-extra-off-device leakage attenuation of a series stack. ~10x per
#: device is the textbook value; 0.12 is mildly conservative.
DEFAULT_STACK_FACTOR = 0.12


def _off_count_distribution(probabilities: List[float],
                            off_when_high: bool) -> List[float]:
    """P(k series devices off), k = 0..n, inputs independent.

    ``off_when_high``: nmos devices are off when their input is low
    (False); pmos devices are off when their input is high (True).
    """
    distribution = [1.0]
    for probability in probabilities:
        p_off = probability if off_when_high else 1.0 - probability
        extended = [0.0] * (len(distribution) + 1)
        for k, mass in enumerate(distribution):
            extended[k] += mass * (1.0 - p_off)
            extended[k + 1] += mass * p_off
        distribution = extended
    return distribution


def expected_stack_factor(gate_type: GateType,
                          input_probabilities: List[float],
                          stack_factor: float = DEFAULT_STACK_FACTOR
                          ) -> float:
    """Expected leakage multiplier of one gate in ``(0, 1]``.

    The series network is the nmos stack for AND/NAND (off when input
    low) and the pmos stack for OR/NOR (off when input high). XOR/XNOR
    are treated as 2-high stacks of their dominant branch; BUF/NOT have
    no stack.
    """
    if not 0.0 < stack_factor <= 1.0:
        raise ReproError(
            f"stack_factor must lie in (0, 1], got {stack_factor}")
    for probability in input_probabilities:
        if not 0.0 <= probability <= 1.0:
            raise ReproError(
                f"probability {probability} not in [0, 1]")
    if gate_type in (GateType.BUF, GateType.NOT) \
            or len(input_probabilities) < 2:
        return 1.0
    if gate_type in (GateType.AND, GateType.NAND):
        off_when_high = False   # nmos stack, off at logic 0
    elif gate_type in (GateType.OR, GateType.NOR):
        off_when_high = True    # pmos stack, off at logic 1
    elif gate_type in (GateType.XOR, GateType.XNOR):
        # Model as an effective 2-high stack with balanced inputs.
        off_when_high = False
        input_probabilities = input_probabilities[:2]
    else:
        raise ReproError(f"unsupported gate type {gate_type}")

    distribution = _off_count_distribution(list(input_probabilities),
                                           off_when_high)
    expected = distribution[0]  # k = 0: series network on; full leak.
    for k, mass in enumerate(distribution[1:], start=1):
        expected += mass * stack_factor ** (k - 1)
    return min(expected, 1.0)


@dataclass(frozen=True)
class StateLeakageReport:
    """Expected-state leakage next to the eq. A1 upper bound."""

    upper_bound: EnergyReport
    #: Per-gate expected multipliers in (0, 1].
    factors: Mapping[str, float]
    #: Expected static energy (J/cycle).
    expected_static: float

    @property
    def reduction(self) -> float:
        """upper-bound static / expected static (>= 1)."""
        if self.expected_static <= 0.0:
            return float("inf") if self.upper_bound.static > 0.0 else 1.0
        return self.upper_bound.static / self.expected_static

    @property
    def expected_total(self) -> float:
        return self.expected_static + self.upper_bound.dynamic


def state_dependent_leakage(ctx: CircuitContext,
                            vdd: float | Mapping[str, float],
                            vth: float | Mapping[str, float],
                            widths: Mapping[str, float],
                            frequency: float,
                            activity: ActivityEstimate | None = None,
                            stack_factor: float = DEFAULT_STACK_FACTOR
                            ) -> StateLeakageReport:
    """Expected static energy under the input-state distribution."""
    activity = activity or ctx.activity
    upper = total_energy(ctx, vdd, vth, widths, frequency)
    factors: Dict[str, float] = {}
    expected = 0.0
    for name in ctx.gates:
        gate = ctx.network.gate(name)
        input_probabilities = [activity.probability(fanin)
                               for fanin in gate.fanins]
        factor = expected_stack_factor(gate.gate_type, input_probabilities,
                                       stack_factor=stack_factor)
        factors[name] = factor
        expected += factor * upper.per_gate_static[name]
    return StateLeakageReport(upper_bound=upper, factors=factors,
                              expected_static=expected)
