"""Vectorized (NumPy) evaluation engine.

Procedure 2 evaluates the circuit hundreds of times; the scalar
reference implementation walks Python dicts gate by gate. This subpackage
provides a drop-in vectorized engine:

* :class:`~repro.fastpath.arrays.ArrayContext` — flat NumPy mirrors of a
  :class:`~repro.context.CircuitContext` (CSR fanin/fanout structure,
  per-gate capacitance coefficients, level partition for topological
  vectorization),
* :mod:`~repro.fastpath.evaluate` — vectorized minimum-width sizing
  (budget repair included), STA and energy evaluation, all accepting
  per-gate Vdd/Vth vectors as well as global scalars.

The kernels are *bit-compatible by construction* with the scalar path
(the same formulas over the same numbers, just batched; transistor
currents go through the scalar device model once per distinct voltage
pair); the test suite asserts agreement to float round-off on every
benchmark circuit and on random design points, repair corners included —
there is no scalar fallback anywhere. Optimizers consume these kernels
through :class:`repro.engine.array.ArrayEngine` (settings
``engine="fast"``, or ``engine="auto"`` with ``REPRO_ENGINE=fast``).
"""

from repro.fastpath.arrays import ArrayContext
from repro.fastpath.evaluate import (
    fast_size_widths,
    fast_sta,
    fast_total_energy,
)

__all__ = [
    "ArrayContext",
    "fast_size_widths",
    "fast_sta",
    "fast_total_energy",
]
