"""Vectorized (NumPy) evaluation engine.

Procedure 2 evaluates the circuit hundreds of times; the scalar
reference implementation walks Python dicts gate by gate. This subpackage
provides a drop-in vectorized engine:

* :class:`~repro.fastpath.arrays.ArrayContext` — flat NumPy mirrors of a
  :class:`~repro.context.CircuitContext` (CSR fanin/fanout structure,
  per-gate capacitance coefficients, level partition for topological
  vectorization),
* :mod:`~repro.fastpath.evaluate` — vectorized minimum-width sizing,
  STA and energy evaluation.

The engine is *bit-compatible by construction* with the scalar path (the
same formulas over the same numbers, just batched); the test suite
asserts agreement to float tolerance on every benchmark circuit and on
random design points. The heuristic uses it via
``HeuristicSettings(engine="fast")`` with automatic fallback to the
scalar path wherever budget repair is needed.
"""

from repro.fastpath.arrays import ArrayContext
from repro.fastpath.evaluate import (
    fast_size_widths,
    fast_sta,
    fast_total_energy,
)

__all__ = [
    "ArrayContext",
    "fast_size_widths",
    "fast_sta",
    "fast_total_energy",
]
