"""Vectorized sizing, STA and energy over an :class:`ArrayContext`.

Scalar-global ``Vdd``/``Vth`` only (the hot loop of Procedure 2);
per-gate voltage maps stay on the scalar reference path. Formulas mirror
``repro.optimize.width_search`` / ``repro.timing`` / ``repro.power``
term by term — the equivalence tests assert agreement to float
round-off on every benchmark circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.fastpath.arrays import ArrayContext, _CSR
from repro.technology import leakage, mosfet
from repro.timing.delay_model import slope_coefficient


def _drive_per_width(arrays: ArrayContext, vdd: float,
                     vth: float) -> np.ndarray:
    """Vectorized ``effective_drive_per_width`` over all gates."""
    tech = arrays.ctx.tech
    current = mosfet.drain_current_per_width(tech, vdd, vth)
    off = leakage.off_current_per_width(tech, vth, vds=vdd)
    stack = 1.0 + tech.stack_derating * (arrays.fanin_count - 1)
    return current / stack - arrays.fanin_count * off


def _external_caps(arrays: ArrayContext, w: np.ndarray, start: int,
                   stop: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ext_cap, wire_rc, flight) for gate rows ``start:stop``."""
    lo = arrays.fanout.ptr[start]
    hi = arrays.fanout.ptr[stop]
    idx = arrays.fanout.indices[lo:hi]
    is_gate = arrays.fanout_is_gate[lo:hi]
    sink_w = np.where(is_gate, w[np.clip(idx, 0, None)],
                      arrays.ctx.BOUNDARY_WIDTH)
    cap_entries = np.where(is_gate,
                           sink_w * arrays.fanout_cap[lo:hi], 0.0)
    rc_entries = arrays.branch_res[lo:hi] * (
        0.5 * arrays.branch_cap[lo:hi]
        + sink_w * arrays.fanout_cap[lo:hi])
    flight_entries = arrays.branch_flight[lo:hi]

    view = _CSR(arrays.fanout.ptr[start:stop + 1] - lo, idx)
    ext = (arrays.wire_cap[start:stop] + arrays.boundary_cap[start:stop]
           + _segment(view, cap_entries, np.add, 0.0))
    rc = _segment(view, rc_entries, np.maximum, 0.0)
    flight = _segment(view, flight_entries, np.maximum, 0.0)
    return ext, rc, flight


def _segment(csr: _CSR, values: np.ndarray, op, empty: float) -> np.ndarray:
    result = np.full(len(csr.ptr) - 1, empty)
    lengths = np.diff(csr.ptr)
    nonempty = lengths > 0
    if values.size and nonempty.any():
        result[nonempty] = op.reduceat(values, csr.ptr[:-1][nonempty])
    return result


@dataclass(frozen=True)
class FastSizing:
    """Vectorized sizing outcome (processing order = reverse topological)."""

    widths: np.ndarray
    feasible: bool

    def widths_map(self, arrays: ArrayContext) -> Dict[str, float]:
        return arrays.array_to_widths(self.widths)


def fast_size_widths(arrays: ArrayContext, budgets: np.ndarray,
                     vdd: float, vth: float) -> FastSizing:
    """Vectorized minimum-width sizing (no budget repair — callers fall
    back to the scalar path when this reports infeasible)."""
    tech = arrays.ctx.tech
    n = arrays.n_gates
    drive = _drive_per_width(arrays, vdd, vth)
    if np.any(drive <= 0.0):
        return FastSizing(widths=np.full(n, tech.width_max), feasible=False)

    slope_k = slope_coefficient(tech, vdd, vth)
    fanin_budget = arrays.segment_max(arrays.fanin, budgets[
        arrays.fanin.indices], empty=0.0)
    slope = slope_k * fanin_budget

    k_vdd = tech.velocity_saturation_coeff * vdd
    self_term = k_vdd * arrays.self_cap / drive

    w = np.ones(n)
    feasible = True
    for start, stop in arrays.level_slices:
        ext, rc, flight = _external_caps(arrays, w, start, stop)
        available = (budgets[start:stop] - slope[start:stop]
                     - rc - flight - self_term[start:stop])
        ext_term = k_vdd * ext / drive[start:stop]
        with np.errstate(divide="ignore", invalid="ignore"):
            needed = np.where(available > 0.0, ext_term / available,
                              np.inf)
        if np.any(needed > tech.width_max):
            feasible = False
            needed = np.minimum(needed, tech.width_max)
        w[start:stop] = np.maximum(needed, tech.width_min)
    return FastSizing(widths=w, feasible=feasible)


def fast_sta(arrays: ArrayContext, vdd: float, vth: float,
             w: np.ndarray) -> Tuple[float, np.ndarray]:
    """Vectorized STA: ``(critical delay, per-gate delays)``.

    Matches ``repro.timing.sta.analyze_timing`` (primary inputs ideal).
    """
    tech = arrays.ctx.tech
    n = arrays.n_gates
    drive = _drive_per_width(arrays, vdd, vth)
    slope_k = slope_coefficient(tech, vdd, vth)
    k_vdd = tech.velocity_saturation_coeff * vdd

    ext, rc, flight = _external_caps(arrays, w, 0, n)
    load = w * arrays.self_cap + ext
    with np.errstate(divide="ignore", invalid="ignore"):
        switching = np.where(drive > 0.0, k_vdd * load / (drive * w),
                             np.inf)
    fixed = switching + rc + flight

    delays = np.zeros(n)
    arrivals = np.zeros(n)
    for start, stop in reversed(arrays.level_slices):
        lo = arrays.fanin.ptr[start]
        hi = arrays.fanin.ptr[stop]
        idx = arrays.fanin.indices[lo:hi]
        view = _CSR(arrays.fanin.ptr[start:stop + 1] - lo, idx)
        max_fanin_delay = _segment(view, delays[idx], np.maximum, 0.0)
        max_fanin_arrival = _segment(view, arrivals[idx], np.maximum, 0.0)
        delays[start:stop] = slope_k * max_fanin_delay + fixed[start:stop]
        arrivals[start:stop] = max_fanin_arrival + delays[start:stop]

    outputs = arrays.ctx.network.outputs
    critical = 0.0
    for name in outputs:
        position = arrays.index.get(name)
        arrival = 0.0 if position is None else float(arrivals[position])
        critical = max(critical, arrival)
    return critical, delays


def fast_total_energy(arrays: ArrayContext, vdd: float, vth: float,
                      w: np.ndarray, frequency: float
                      ) -> Tuple[float, float]:
    """Vectorized eqs. A1 + A2: ``(static, dynamic)`` totals (J/cycle)."""
    if frequency <= 0.0:
        raise OptimizationError(f"frequency must be > 0, got {frequency}")
    tech = arrays.ctx.tech
    off = leakage.off_current_per_width(tech, vth, vds=vdd)
    static = float(np.sum(vdd * w * off / frequency))

    ext, _, _ = _external_caps(arrays, w, 0, arrays.n_gates)
    load = w * arrays.self_cap + ext
    dynamic = float(np.sum(0.5 * arrays.activity * vdd * vdd * load))

    # Input-net term (module ports drive gate inputs and wire).
    sink_caps = arrays.segment_sum(
        arrays.input_fanout,
        w[arrays.input_fanout.indices] * arrays.input_fanout_cap)
    input_load = (arrays.input_self_plus_wire + arrays.input_fixed_cap
                  + sink_caps)
    dynamic += float(np.sum(0.5 * arrays.input_activity * vdd * vdd
                            * input_load))
    return static, dynamic
