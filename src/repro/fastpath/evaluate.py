"""Vectorized sizing, STA and energy over an :class:`ArrayContext`.

``Vdd``/``Vth`` may be global scalars (the hot loop of Procedure 2) or
per-gate values — a ``{name: value}`` mapping or a vector in array order
— so multi-Vth and multi-Vdd searches run on the same kernels. Formulas
mirror ``repro.optimize.width_search`` / ``repro.timing`` /
``repro.power`` term by term; the equivalence tests assert agreement to
float round-off on every benchmark circuit.

Per-gate transistor currents are evaluated once per *distinct*
``(Vdd, Vth)`` pair through the scalar reference model
(:mod:`repro.technology.mosfet` / :mod:`repro.technology.leakage`) and
scattered into vectors — searches use a handful of distinct voltages, so
this is cheap and keeps the device physics in exactly one place.

Budget repair (``repair_ceiling``) runs inside the kernel: when the
vectorized level sweep hits an under-budgeted gate, sizing restarts as a
replay in the scalar search's exact processing order (repair mutates
driver budgets sequentially, so order is semantics), with the same
4-iteration deficit shift and the same full-STA re-verification. A gate
that stays unsizable even after repair aborts the replay immediately —
the corner is definitively infeasible and only the verdict is
observable, so the remaining widths need not be produced (they are left
at 1.0, unlike the scalar path's ``w_max`` placeholders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.errors import OptimizationError, TimingError
from repro.fastpath.arrays import ArrayContext, _CSR
from repro.obs import trace
from repro.obs.instrument import (
    BUDGET_REPAIRS,
    DELAY_MODEL_CALLS,
    ENERGY_EVALUATIONS,
    STA_CALLS,
    WIDTH_SIZINGS,
    seam,
)
from repro.obs.metrics import current_metrics
from repro.technology import leakage, mosfet
from repro.timing.delay_model import slope_coefficient

#: Smallest budget (s) a driver may be squeezed to during repair
#: (mirrors ``repro.optimize.width_search._MIN_BUDGET``).
_MIN_BUDGET = 1e-15

#: A global voltage, a per-gate map, or a vector in array order.
Voltage = Union[float, Mapping[str, float], np.ndarray]


def _as_values(arrays: ArrayContext, value: Voltage) -> "float | np.ndarray":
    """Normalize a voltage argument: scalar stays scalar, else a vector."""
    if isinstance(value, np.ndarray):
        if value.shape != (arrays.n_gates,):
            raise OptimizationError(
                f"voltage vector has shape {value.shape}, "
                f"expected ({arrays.n_gates},)")
        return value
    return arrays.values_to_array(value)


def _currents(arrays: ArrayContext, vdd, vth) -> Tuple[np.ndarray, np.ndarray]:
    """Per-gate ``(drain_current, off_current)`` per unit width.

    Scalar voltages go straight through the scalar reference model (the
    single-corner hot path); vectors are evaluated once per distinct
    ``(vdd, vth)`` pair with the *same* scalar model and scattered, so
    the physics is bit-identical between engines in both modes.
    """
    tech = arrays.ctx.tech
    if not isinstance(vdd, np.ndarray) and not isinstance(vth, np.ndarray):
        return (mosfet.drain_current_per_width(tech, vdd, vth),
                leakage.off_current_per_width(tech, vth, vds=vdd))
    n = arrays.n_gates
    vdd_vec = np.broadcast_to(np.asarray(vdd, dtype=float), (n,))
    vth_vec = np.broadcast_to(np.asarray(vth, dtype=float), (n,))
    pairs = np.stack([vdd_vec, vth_vec], axis=1)
    unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
    drain = np.empty(len(unique))
    off = np.empty(len(unique))
    for k, (pair_vdd, pair_vth) in enumerate(unique):
        drain[k] = mosfet.drain_current_per_width(tech, float(pair_vdd),
                                                  float(pair_vth))
        off[k] = leakage.off_current_per_width(tech, float(pair_vth),
                                               vds=float(pair_vdd))
    inverse = inverse.reshape(-1)
    return drain[inverse], off[inverse]


def _drive_per_width(arrays: ArrayContext, vdd, vth):
    """Vectorized ``effective_drive_per_width`` over all gates."""
    tech = arrays.ctx.tech
    current, off = _currents(arrays, vdd, vth)
    stack = 1.0 + tech.stack_derating * (arrays.fanin_count - 1)
    return current / stack - arrays.fanin_count * off


def _slope_coefficients(arrays: ArrayContext, vdd, vth):
    """``slope_coefficient`` elementwise (pure arithmetic, so exact)."""
    tech = arrays.ctx.tech
    if not isinstance(vdd, np.ndarray) and not isinstance(vth, np.ndarray):
        return slope_coefficient(tech, vdd, vth)
    if bool(np.any(np.asarray(vdd) <= 0.0)):
        raise TimingError("vdd must be > 0")
    raw = 0.5 - (1.0 - vth / vdd) / (1.0 + tech.alpha)
    return np.clip(raw, 0.0, 0.5)


def _at(value, index: int) -> float:
    """One gate's value out of a scalar-or-vector quantity."""
    if isinstance(value, np.ndarray):
        return float(value[index])
    return value


def _sl(value, start: int, stop: int):
    """A level slice of a scalar-or-vector quantity."""
    if isinstance(value, np.ndarray):
        return value[start:stop]
    return value


def _external_caps(arrays: ArrayContext, w: np.ndarray, start: int,
                   stop: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ext_cap, wire_rc, flight) for gate rows ``start:stop``.

    Boundary branches carry the sentinel index ``-1``; their receiver
    cap is pre-folded into ``boundary_cap``. The width gather uses the
    precomputed clamp-to-0 ``fanout_safe_idx`` (one flat gather + a
    ``where``), replacing the boolean-mask double gather that was
    superlinear on wide-fanout rows; the selected values are unchanged.
    """
    lo = arrays.fanout.ptr[start]
    hi = arrays.fanout.ptr[stop]
    idx = arrays.fanout.indices[lo:hi]
    is_gate = arrays.fanout_is_gate[lo:hi]
    sink_w = np.where(is_gate, w[arrays.fanout_safe_idx[lo:hi]],
                      arrays.ctx.BOUNDARY_WIDTH)
    cap_entries = np.where(is_gate,
                           sink_w * arrays.fanout_cap[lo:hi], 0.0)
    rc_entries = arrays.branch_res[lo:hi] * (
        0.5 * arrays.branch_cap[lo:hi]
        + sink_w * arrays.fanout_cap[lo:hi])
    flight_entries = arrays.branch_flight[lo:hi]

    view = _CSR(arrays.fanout.ptr[start:stop + 1] - lo, idx)
    ext = (arrays.wire_cap[start:stop] + arrays.boundary_cap[start:stop]
           + _segment(view, cap_entries, np.add, 0.0))
    rc = _segment(view, rc_entries, np.maximum, 0.0)
    flight = _segment(view, flight_entries, np.maximum, 0.0)
    return ext, rc, flight


def _segment(csr: _CSR, values: np.ndarray, op, empty: float) -> np.ndarray:
    result = np.full(len(csr.ptr) - 1, empty)
    lengths = np.diff(csr.ptr)
    nonempty = lengths > 0
    if values.size and nonempty.any():
        result[nonempty] = op.reduceat(values, csr.ptr[:-1][nonempty])
    return result


@dataclass(frozen=True)
class FastSizing:
    """Vectorized sizing outcome (processing order = reverse topological).

    On an infeasible outcome the widths are not meaningful (the repair
    replay aborts at the first definitively unsizable gate); only the
    verdict and the repaired-gate list are part of the contract.
    """

    widths: np.ndarray
    feasible: bool
    #: Gates whose budgets were repaired (deficit moved onto drivers).
    repaired: Tuple[str, ...] = ()

    def widths_map(self, arrays: ArrayContext) -> Dict[str, float]:
        return arrays.array_to_widths(self.widths)


def fast_size_widths(arrays: ArrayContext, budgets: np.ndarray,
                     vdd: Voltage, vth: Voltage,
                     method: str = "closed_form",
                     bisect_steps: int = 24,
                     repair_ceiling: float | None = None,
                     warm: np.ndarray | None = None) -> FastSizing:
    """Vectorized minimum-width sizing, optionally with budget repair.

    Without ``repair_ceiling`` this is the pure level sweep (infeasible
    when any budget cannot be met, exactly like the scalar search run
    without repair). With it, under-budgeted gates trigger the scalar-
    order repair replay described in the module docstring, and any
    assignment that used repair is re-verified with a full STA pass
    against the ceiling. ``warm`` (an array-order width vector) seeds
    the ``bisect`` brackets — one extra probe per level, mirroring the
    scalar search gate by gate; the closed-form solver ignores it.
    """
    from repro.fastpath import batch as _batch
    if _batch.is_batch(vdd) or _batch.is_batch(vth):
        if warm is not None:
            raise OptimizationError(
                "warm bisection seeds are not supported on the batched "
                "path; size warm-started searches row by row")
        vdd_b, vth_b, _, n_rows = _batch.normalize_args(arrays, vdd, vth)
        return _batch.batch_size_widths(arrays, budgets, vdd_b, vth_b,
                                        n_rows, method=method,
                                        bisect_steps=bisect_steps,
                                        repair_ceiling=repair_ceiling)
    if method not in ("closed_form", "bisect"):
        raise OptimizationError(f"unknown width-search method {method!r}")
    span_name = "width_bisect" if method == "bisect" else "width_search"
    with trace.span(span_name, method=method, engine="fast"), \
            seam("width_search", counter=WIDTH_SIZINGS):
        return _fast_size_widths(arrays, budgets, vdd, vth, method,
                                 bisect_steps, repair_ceiling, warm)


def _fast_size_widths(arrays: ArrayContext, budgets: np.ndarray,
                      vdd: Voltage, vth: Voltage, method: str,
                      bisect_steps: int,
                      repair_ceiling: float | None,
                      warm: np.ndarray | None = None) -> FastSizing:
    tech = arrays.ctx.tech
    n = arrays.n_gates
    vdd = _as_values(arrays, vdd)
    vth = _as_values(arrays, vth)
    drive = _drive_per_width(arrays, vdd, vth)
    if np.any(drive <= 0.0):
        # Subthreshold contention: some gate cannot switch at any width,
        # and repair cannot help (the scalar path reaches the same
        # verdict after sizing the remaining gates).
        return FastSizing(widths=np.full(n, tech.width_max), feasible=False)

    slope_k = _slope_coefficients(arrays, vdd, vth)
    fanin_budget = arrays.segment_max(arrays.fanin, budgets[
        arrays.fanin.indices], empty=0.0)
    slope = slope_k * fanin_budget

    k_vdd = tech.velocity_saturation_coeff * vdd
    self_term = k_vdd * arrays.self_cap / drive

    w = np.ones(n)
    feasible = True
    for start, stop in arrays.level_slices:
        ext, rc, flight = _external_caps(arrays, w, start, stop)
        if method == "closed_form":
            available = (budgets[start:stop] - slope[start:stop]
                         - rc - flight - self_term[start:stop])
            ext_term = _sl(k_vdd, start, stop) * ext / _sl(drive, start, stop)
            with np.errstate(divide="ignore", invalid="ignore"):
                needed = np.where(available > 0.0, ext_term / available,
                                  np.inf)
        else:
            needed = _bisect_level(arrays, budgets, slope, rc, flight,
                                   k_vdd, drive, ext, start, stop,
                                   bisect_steps, warm)
        failed = needed > tech.width_max
        if np.any(failed):
            feasible = False
            if repair_ceiling is not None:
                # Restart as a scalar-order replay with repair enabled.
                return _size_with_repair(arrays, budgets, vdd, vth, drive,
                                         slope_k, k_vdd, method,
                                         bisect_steps, repair_ceiling, warm)
            needed = np.minimum(needed, tech.width_max)
        w[start:stop] = np.maximum(needed, tech.width_min)
    return FastSizing(widths=w, feasible=feasible)


def _bisect_level(arrays: ArrayContext, budgets: np.ndarray,
                  slope: np.ndarray, rc: np.ndarray, flight: np.ndarray,
                  k_vdd, drive, ext: np.ndarray, start: int, stop: int,
                  steps: int, warm: np.ndarray | None = None) -> np.ndarray:
    """The paper's M-step width bisection, vectorized over one level.

    Identical decision sequence to ``width_search._bisect_width`` gate
    by gate (same delay form, same midpoint updates, same warm-probe
    rule); returns ``inf`` for gates infeasible even at ``w_max`` so the
    caller's clamp/repair logic is shared with the closed-form solver.
    """
    tech = arrays.ctx.tech
    k_lvl = _sl(k_vdd, start, stop)
    drive_lvl = _sl(drive, start, stop)
    self_lvl = arrays.self_cap[start:stop]
    fixed = slope[start:stop] + rc + flight
    budget = budgets[start:stop]

    def delay_at(width) -> np.ndarray:
        load = width * self_lvl + ext
        return fixed + k_lvl * load / (drive_lvl * width)

    feasible_at_max = delay_at(tech.width_max) <= budget
    done_at_min = delay_at(tech.width_min) <= budget

    low = np.full(stop - start, tech.width_min)
    high = np.full(stop - start, tech.width_max)
    if warm is not None:
        warm_lvl = warm[start:stop]
        probe = (warm_lvl > low) & (warm_lvl < high)
        if np.any(probe):
            meets = delay_at(np.where(probe, warm_lvl, high)) <= budget
            high = np.where(probe & meets, warm_lvl, high)
            low = np.where(probe & ~meets, warm_lvl, low)
    for _ in range(steps):
        mid = 0.5 * (low + high)
        meets = delay_at(mid) <= budget
        high = np.where(meets, mid, high)
        low = np.where(meets, low, mid)
    return np.where(feasible_at_max,
                    np.where(done_at_min, tech.width_min, high),
                    np.inf)


# -- scalar-order repair replay --------------------------------------------
#
# The replay visits gates one at a time (repair mutates driver budgets
# sequentially, so order is semantics) — per-gate NumPy calls on tiny
# slices would dominate its runtime, so everything below runs on the
# plain-list :class:`~repro.fastpath.arrays.PythonView` mirrors and
# built-in floats.


def _row_parasitics(view, w: List[float], i: int
                    ) -> Tuple[float, float, float]:
    """(wire_rc, flight, external_cap) of one gate at current widths."""
    ext = view.wire_cap[i] + view.boundary_cap[i]
    wire_rc = 0.0
    flight = 0.0
    idx = view.fanout_idx
    caps = view.fanout_cap
    for k in range(view.fanout_ptr[i], view.fanout_ptr[i + 1]):
        sink = idx[k]
        if sink >= 0:
            sink_w = w[sink]
            ext += sink_w * caps[k]
        else:
            sink_w = view.boundary_width
        rc = view.branch_res[k] * (0.5 * view.branch_cap[k]
                                   + sink_w * caps[k])
        if rc > wire_rc:
            wire_rc = rc
        if view.branch_flight[k] > flight:
            flight = view.branch_flight[k]
    return wire_rc, flight, ext


def _fanin_budget(view, working: List[float], i: int) -> float:
    budget = 0.0
    idx = view.fanin_idx
    for k in range(view.fanin_ptr[i], view.fanin_ptr[i + 1]):
        if working[idx[k]] > budget:
            budget = working[idx[k]]
    return budget


def _gate_floor_fast(view, i: int, w: List[float], drive: List[float],
                     k_vdd: List[float]) -> float:
    """Per-gate delay floor (mirrors ``width_search._gate_floor``)."""
    drive_i = drive[i]
    if drive_i <= 0.0:
        return math.inf
    wire_rc, flight, _ = _row_parasitics(view, w, i)
    return k_vdd[i] * view.self_cap[i] / drive_i + wire_rc + flight


def _gate_width(tech, method: str, bisect_steps: int, budget: float,
                slope: float, wire_rc: float, flight: float,
                self_term: float, ext_term: float, self_cap: float,
                ext_cap: float, k_i: float, drive_i: float,
                warm_width: float | None = None) -> float | None:
    """One gate's minimum feasible width, or None (both solvers)."""
    if method == "closed_form":
        available = budget - slope - wire_rc - flight - self_term
        if available <= 0.0:
            return None
        width = ext_term / available
        if width > tech.width_max:
            return None
        return max(width, tech.width_min)

    fixed = slope + wire_rc + flight

    def delay_at(width: float) -> float:
        load = width * self_cap + ext_cap
        return fixed + k_i * load / (drive_i * width)

    if delay_at(tech.width_max) > budget:
        return None
    if delay_at(tech.width_min) <= budget:
        return tech.width_min
    low, high = tech.width_min, tech.width_max
    if warm_width is not None and low < warm_width < high:
        if delay_at(warm_width) <= budget:
            high = warm_width
        else:
            low = warm_width
    for _ in range(bisect_steps):
        mid = 0.5 * (low + high)
        if delay_at(mid) <= budget:
            high = mid
        else:
            low = mid
    return high


def _repair_gate(view, tech, i: int, w: List[float],
                 working: List[float], drive: List[float],
                 slope_k: List[float], k_vdd: List[float],
                 wire_rc: float, flight: float, ext_cap: float
                 ) -> float | None:
    """Shift gate ``i``'s budget deficit onto its drivers.

    Faithful port of ``width_search._attempt_repair``: the gate takes
    the budget it needs at 80 % of ``w_max``; the same delta comes off
    each logic-gate driver, never below 1.05x the driver's delay floor.
    """
    fanins = view.fanin_idx[view.fanin_ptr[i]:view.fanin_ptr[i + 1]]

    drive_i = drive[i]
    k_i = k_vdd[i]
    slope_k_i = slope_k[i]
    self_term = k_i * view.self_cap[i] / drive_i
    ext_term = k_i * ext_cap / drive_i
    floors = [1.05 * _gate_floor_fast(view, fanin, w, drive, k_vdd)
              for fanin in fanins]

    for _ in range(4):
        slope = slope_k_i * _fanin_budget(view, working, i)
        needed = (slope + wire_rc + flight + self_term
                  + ext_term / (0.8 * tech.width_max))
        delta = needed - working[i]
        if delta <= 0.0:
            break
        working[i] += delta
        for fanin, floor in zip(fanins, floors):
            working[fanin] = max(working[fanin] - delta, floor,
                                 _MIN_BUDGET)

    slope = slope_k_i * _fanin_budget(view, working, i)
    available = working[i] - slope - wire_rc - flight - self_term
    if available <= 0.0:
        return None
    width = ext_term / available
    if width > tech.width_max:
        return None
    return max(width, tech.width_min)


def _as_list(value, n: int) -> List[float]:
    """A per-gate quantity as a plain list (scalars broadcast)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    return [float(value)] * n


def _size_with_repair(arrays: ArrayContext, budgets: np.ndarray,
                      vdd, vth, drive, slope_k, k_vdd, method: str,
                      bisect_steps: int, repair_ceiling: float,
                      warm: np.ndarray | None = None,
                      verify: bool = True) -> FastSizing:
    """Replay sizing in scalar processing order with repair enabled.

    Aborts at the first gate that stays unsizable after repair — the
    corner is then definitively infeasible and widths are unobservable.

    ``verify=False`` skips the full-STA check of a repaired design and
    reports it feasible *pending verification* — the batched path
    collects those rows and verifies them all in one ``batch_sta`` call
    (bit-identical per row, same counter totals).
    """
    tech = arrays.ctx.tech
    n = arrays.n_gates
    view = arrays.python_view()
    working = budgets.tolist()
    w = [1.0] * n
    drive_l = _as_list(drive, n)
    slope_k_l = _as_list(slope_k, n)
    k_vdd_l = _as_list(k_vdd, n)
    self_cap = view.self_cap
    repaired: List[int] = []

    for i in view.scalar_order:
        drive_i = drive_l[i]
        budget_i = working[i]
        slope = slope_k_l[i] * _fanin_budget(view, working, i)
        wire_rc, flight, ext_cap = _row_parasitics(view, w, i)
        k_i = k_vdd_l[i]
        self_term = k_i * self_cap[i] / drive_i
        ext_term = k_i * ext_cap / drive_i

        width = _gate_width(tech, method, bisect_steps, budget_i, slope,
                            wire_rc, flight, self_term, ext_term,
                            self_cap[i], ext_cap, k_i, drive_i,
                            None if warm is None else float(warm[i]))
        if width is None:
            width = _repair_gate(view, tech, i, w, working, drive_l,
                                 slope_k_l, k_vdd_l, wire_rc, flight,
                                 ext_cap)
            if width is None:
                # Unrepairable: the verdict is already infeasible.
                return FastSizing(widths=np.asarray(w), feasible=False,
                                  repaired=_names(arrays, repaired))
            repaired.append(i)
        w[i] = width

    widths = np.asarray(w)
    feasible = True
    if repaired:
        current_metrics().incr(BUDGET_REPAIRS, len(repaired))
        # Repairs perturb the budget bookkeeping the per-gate guarantees
        # rest on; verify the actual design with a full STA pass.
        if verify:
            critical, _ = fast_sta(arrays, vdd, vth, widths)
            if critical > repair_ceiling * (1.0 + 1e-9):
                feasible = False
    return FastSizing(widths=widths, feasible=feasible,
                      repaired=_names(arrays, repaired))


def _names(arrays: ArrayContext, indices: List[int]) -> Tuple[str, ...]:
    return tuple(arrays.gate_names[i] for i in indices)


# -- STA and energy --------------------------------------------------------


def fast_sta(arrays: ArrayContext, vdd: Voltage, vth: Voltage,
             w: np.ndarray) -> Tuple[float, np.ndarray]:
    """Vectorized STA: ``(critical delay, per-gate delays)``.

    Matches ``repro.timing.sta.analyze_timing`` (primary inputs ideal).
    An output that is itself a primary input arrives at 0.0, exactly as
    in the scalar pass; an output missing from both the gate index and
    the primary inputs raises :class:`~repro.errors.TimingError`.

    With a ``(B, n)`` width batch (or :class:`~repro.fastpath.batch
    .BatchValue` voltages) this dispatches to the batched kernel and
    returns ``(critical (B,), delays (B, n))`` — bit-identical per row.
    """
    from repro.fastpath import batch as _batch
    if w.ndim == 2 or _batch.is_batch(vdd) or _batch.is_batch(vth):
        vdd_b, vth_b, w2, n_rows = _batch.normalize_args(arrays, vdd, vth, w)
        return _batch.batch_sta(arrays, vdd_b, vth_b, w2, n_rows)
    tech = arrays.ctx.tech
    n = arrays.n_gates
    with seam("sta", counter=STA_CALLS):
        vdd = _as_values(arrays, vdd)
        vth = _as_values(arrays, vth)
        drive = _drive_per_width(arrays, vdd, vth)
        slope_k = _slope_coefficients(arrays, vdd, vth)
        k_vdd = tech.velocity_saturation_coeff * vdd

        ext, rc, flight = _external_caps(arrays, w, 0, n)
        load = w * arrays.self_cap + ext
        with np.errstate(divide="ignore", invalid="ignore"):
            switching = np.where(drive > 0.0, k_vdd * load / (drive * w),
                                 np.inf)
        fixed = switching + rc + flight

        delays = np.zeros(n)
        arrivals = np.zeros(n)
        for start, stop in reversed(arrays.level_slices):
            lo = arrays.fanin.ptr[start]
            hi = arrays.fanin.ptr[stop]
            idx = arrays.fanin.indices[lo:hi]
            view = _CSR(arrays.fanin.ptr[start:stop + 1] - lo, idx)
            max_fanin_delay = _segment(view, delays[idx], np.maximum, 0.0)
            max_fanin_arrival = _segment(view, arrivals[idx], np.maximum, 0.0)
            delays[start:stop] = (_sl(slope_k, start, stop) * max_fanin_delay
                                  + fixed[start:stop])
            arrivals[start:stop] = max_fanin_arrival + delays[start:stop]
        current_metrics().incr(DELAY_MODEL_CALLS, n)

    network = arrays.ctx.network
    critical = 0.0
    for name in network.outputs:
        position = arrays.index.get(name)
        if position is None:
            if not network.gate(name).is_input:
                raise TimingError(
                    f"output {name!r} is neither a logic gate nor a "
                    f"primary input")
            arrival = 0.0  # ideal primary input feeding an output port
        else:
            arrival = float(arrivals[position])
        critical = max(critical, arrival)
    return critical, delays


def fast_total_energy(arrays: ArrayContext, vdd: Voltage, vth: Voltage,
                      w: np.ndarray, frequency: float
                      ) -> Tuple[float, float]:
    """Vectorized eqs. A1 + A2: ``(static, dynamic)`` totals (J/cycle).

    With per-gate rails the output swing is the driving gate's own rail
    and primary-input nets swing at the module IO rail (the highest rail
    in use), mirroring ``repro.power.energy``.

    With a ``(B, n)`` width batch (or batched voltages) this dispatches
    to the batched kernel and returns ``(static (B,), dynamic (B,))``.
    """
    from repro.fastpath import batch as _batch
    if w.ndim == 2 or _batch.is_batch(vdd) or _batch.is_batch(vth):
        vdd_b, vth_b, w2, n_rows = _batch.normalize_args(arrays, vdd, vth, w)
        return _batch.batch_total_energy(arrays, vdd_b, vth_b, w2,
                                         frequency, n_rows)
    if frequency <= 0.0:
        raise OptimizationError(f"frequency must be > 0, got {frequency}")
    with seam("energy", counter=ENERGY_EVALUATIONS):
        vdd = _as_values(arrays, vdd)
        vth = _as_values(arrays, vth)
        _, off = _currents(arrays, vdd, vth)
        static = float(np.sum(vdd * w * off / frequency))

        ext, _, _ = _external_caps(arrays, w, 0, arrays.n_gates)
        load = w * arrays.self_cap + ext
        dynamic = float(np.sum(0.5 * arrays.activity * vdd * vdd * load))

        # Input-net term (module ports drive gate inputs and wire).
        io_rail = float(np.max(vdd)) if isinstance(vdd, np.ndarray) else vdd
        sink_caps = arrays.segment_sum(
            arrays.input_fanout,
            w[arrays.input_fanout.indices] * arrays.input_fanout_cap)
        input_load = (arrays.input_self_plus_wire + arrays.input_fixed_cap
                      + sink_caps)
        dynamic += float(np.sum(0.5 * arrays.input_activity
                                * io_rail * io_rail * input_load))
    return static, dynamic
