"""Batched (multi-design) fastpath kernels: a leading design axis.

One invocation evaluates ``B`` independent designs over the same
:class:`~repro.fastpath.arrays.ArrayContext`: ``widths`` is ``(B, n)``
(or ``(1, n)`` for a design shared across rows), and voltages are
:class:`BatchValue`\\ s — a global float, per-row scalars ``(B, 1)``, or
per-gate vectors ``(1, n)`` / ``(B, n)``.

**Bit-identity contract.** Every row of a batched result equals (``==``)
the single-design kernel run on that row alone. Three facts make that
hold by construction:

* Elementwise IEEE arithmetic is broadcast-invariant: the batched
  expressions multiply/add exactly the same doubles in exactly the same
  order as the single-design expressions, just over a leading axis.
* ``np.add.reduceat`` / ``np.maximum.reduceat`` with ``axis=1`` perform
  the same per-segment left-to-right reduction on each row as the 1-D
  call, and ``np.sum(..., axis=1)`` performs the same per-row pairwise
  summation as summing each row alone (asserted empirically by
  ``tests/test_engine_batch.py`` on every circuit it touches).
* Device physics stays in the scalar reference model: currents (and,
  for per-row-scalar voltages, slope coefficients) are evaluated once
  per *distinct* ``(vdd, vth)`` pair through the same scalar functions
  the single-design path calls, then scattered.

Rows whose voltages are per-row scalars reproduce the single-design
*scalar* voltage mode (scalar model calls, scalar slope coefficient);
per-gate rows reproduce the *vector* mode. A batch is one mode or the
other — mixed batches are the caller's (engine fallback's) problem.

Budget repair stays sequential per design: rows that trip the repair
path replay through the single-design ``_size_with_repair``, which is
what the looped engine does for that row anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import OptimizationError, TimingError
from repro.fastpath.arrays import ArrayContext
from repro.fastpath import evaluate as _ev
from repro.obs import trace
from repro.obs.instrument import (
    DELAY_MODEL_CALLS,
    ENERGY_EVALUATIONS,
    STA_CALLS,
    WIDTH_SIZINGS,
    seam,
)
from repro.obs.metrics import current_metrics
from repro.technology import leakage, mosfet
from repro.timing.delay_model import slope_coefficient


@dataclass(frozen=True)
class BatchValue:
    """One normalized batched voltage.

    ``values`` is a float (global), a ``(B, 1)`` array (per-row
    scalars), or a ``(1, n)`` / ``(B, n)`` array (per-gate vectors,
    flagged by ``per_gate``). Arrays are in *internal* (processing)
    order.
    """

    values: Union[float, np.ndarray]
    per_gate: bool

    @property
    def rows(self) -> int:
        if isinstance(self.values, np.ndarray):
            return int(self.values.shape[0])
        return 1

    def row(self, b: int) -> Union[float, np.ndarray]:
        """Row ``b`` in single-design form: a float or an ``(n,)``
        vector — exactly what the looped kernel would have received."""
        if not isinstance(self.values, np.ndarray):
            return self.values
        if not self.per_gate:
            return float(self.values[b, 0])
        if self.values.shape[0] == 1:
            return self.values[0]
        return self.values[b]

    def take(self, rows: np.ndarray) -> "BatchValue":
        """The batch restricted to ``rows`` (row values unchanged)."""
        if not isinstance(self.values, np.ndarray) \
                or self.values.shape[0] == 1:
            return self
        return BatchValue(self.values[rows], self.per_gate)


def as_batch_value(arrays: ArrayContext, value, batch: int) -> BatchValue:
    """Normalize one voltage argument for a ``batch``-row invocation.

    Accepted: :class:`BatchValue` (validated), float (global), mapping
    or ``(n,)`` vector (per-gate, shared by all rows), ``(B, 1)``
    (per-row scalars), ``(1, n)`` / ``(B, n)`` (per-gate). A bare
    ``(B,)`` vector is rejected as ambiguous against ``(n,)`` — reshape
    to ``(B, 1)`` to mean per-row scalars.
    """
    n = arrays.n_gates
    if isinstance(value, BatchValue):
        if isinstance(value.values, np.ndarray):
            shape = value.values.shape
            expected = (1, n) if value.per_gate else (1, 1)
            if shape not in ((batch,) + expected[1:], expected):
                raise OptimizationError(
                    f"batch voltage has shape {shape}, expected "
                    f"{(batch,) + expected[1:]} or {expected}")
        return value
    if isinstance(value, np.ndarray):
        if value.ndim == 2:
            if value.shape == (batch, 1):
                return BatchValue(value, per_gate=False)
            if value.shape in ((batch, n), (1, n)):
                return BatchValue(value, per_gate=True)
            raise OptimizationError(
                f"batch voltage has shape {value.shape}; expected "
                f"({batch}, 1), ({batch}, {n}) or (1, {n})")
        if value.shape == (n,):
            return BatchValue(value.reshape(1, n), per_gate=True)
        raise OptimizationError(
            f"batch voltage has shape {value.shape}; a per-row vector "
            f"must be ({batch}, 1), a shared per-gate vector ({n},)")
    if isinstance(value, Mapping):
        vec = arrays.values_to_array(value)
        return BatchValue(np.asarray(vec).reshape(1, n), per_gate=True)
    return BatchValue(float(value), per_gate=False)


def is_batch(value) -> bool:
    """True when a kernel argument carries a design batch axis."""
    return isinstance(value, BatchValue) or (
        isinstance(value, np.ndarray) and value.ndim == 2)


def _arg_rows(value) -> int:
    if isinstance(value, BatchValue):
        return value.rows
    if isinstance(value, np.ndarray) and value.ndim == 2:
        return int(value.shape[0])
    return 1


def normalize_args(arrays: ArrayContext, vdd, vth,
                   w: Optional[np.ndarray] = None):
    """Normalize a batched kernel invocation's arguments.

    Returns ``(vdd, vth, w, batch)`` with voltages as
    :class:`BatchValue`, widths as ``(B, n)`` or shared ``(1, n)``, and
    ``batch`` the number of design rows (the max over the arguments;
    every batched argument must carry either 1 or ``batch`` rows).
    """
    rows = [_arg_rows(vdd), _arg_rows(vth)]
    if w is not None:
        if w.ndim == 1:
            w = w.reshape(1, -1)
        if w.shape[1] != arrays.n_gates:
            raise OptimizationError(
                f"width batch has shape {w.shape}, expected "
                f"(B, {arrays.n_gates})")
        rows.append(int(w.shape[0]))
    batch = max(rows)
    if any(r not in (1, batch) for r in rows):
        raise OptimizationError(
            f"inconsistent batch sizes {rows}: rows must be 1 or {batch}")
    return (as_batch_value(arrays, vdd, batch),
            as_batch_value(arrays, vth, batch), w, batch)


def _cols(value, start: int, stop: int):
    """A level column-slice of a float / (B,1) / (?,n) quantity."""
    if not isinstance(value, np.ndarray) or value.shape[1] == 1:
        return value
    return value[:, start:stop]


def _pair_scatter(tech, vdd_b: np.ndarray, vth_b: np.ndarray, fns):
    """Evaluate scalar model functions once per distinct (vdd, vth)
    pair over broadcast arrays, scattered back to the broadcast shape."""
    shape = np.broadcast_shapes(vdd_b.shape, vth_b.shape)
    vdd_full = np.broadcast_to(vdd_b, shape).ravel()
    vth_full = np.broadcast_to(vth_b, shape).ravel()
    pairs = np.stack([vdd_full, vth_full], axis=1)
    unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
    outs = [np.empty(len(unique)) for _ in fns]
    for k, (pair_vdd, pair_vth) in enumerate(unique):
        for out, fn in zip(outs, fns):
            out[k] = fn(tech, float(pair_vdd), float(pair_vth))
    inverse = inverse.reshape(-1)
    return tuple(out[inverse].reshape(shape) for out in outs)


def batch_currents(arrays: ArrayContext, vdd: BatchValue, vth: BatchValue):
    """Per-gate ``(drain, off)`` per unit width, batched.

    Same scalar reference model per distinct pair as the single-design
    path, so every stored double is the one that path would compute.
    """
    tech = arrays.ctx.tech
    if not isinstance(vdd.values, np.ndarray) \
            and not isinstance(vth.values, np.ndarray):
        return (mosfet.drain_current_per_width(tech, vdd.values, vth.values),
                leakage.off_current_per_width(tech, vth.values,
                                              vds=vdd.values))
    vdd_b = np.atleast_2d(np.asarray(vdd.values, dtype=float))
    vth_b = np.atleast_2d(np.asarray(vth.values, dtype=float))
    return _pair_scatter(
        tech, vdd_b, vth_b,
        (lambda t, v, th: mosfet.drain_current_per_width(t, v, th),
         lambda t, v, th: leakage.off_current_per_width(t, th, vds=v)))


def batch_slope_coefficients(arrays: ArrayContext, vdd: BatchValue,
                             vth: BatchValue):
    """``slope_coefficient`` batched, mode-faithful per row.

    Per-row-scalar batches go through the scalar reference function per
    distinct pair (what each looped row would do); per-gate batches use
    the broadcast arithmetic of the single-design vector branch.
    """
    tech = arrays.ctx.tech
    if not isinstance(vdd.values, np.ndarray) \
            and not isinstance(vth.values, np.ndarray):
        return slope_coefficient(tech, vdd.values, vth.values)
    if not (vdd.per_gate or vth.per_gate):
        vdd_b = np.atleast_2d(np.asarray(vdd.values, dtype=float))
        vth_b = np.atleast_2d(np.asarray(vth.values, dtype=float))
        return _pair_scatter(tech, vdd_b, vth_b, (slope_coefficient,))[0]
    if bool(np.any(np.asarray(vdd.values) <= 0.0)):
        raise TimingError("vdd must be > 0")
    raw = 0.5 - (1.0 - vth.values / vdd.values) / (1.0 + tech.alpha)
    return np.clip(raw, 0.0, 0.5)


def _batch_drive(arrays: ArrayContext, vdd: BatchValue, vth: BatchValue,
                 batch: int, currents=None) -> np.ndarray:
    """``(B, n)`` effective drive per width (same expression as the
    single-design ``_drive_per_width``, broadcast over rows)."""
    tech = arrays.ctx.tech
    current, off = (currents if currents is not None
                    else batch_currents(arrays, vdd, vth))
    stack = 1.0 + tech.stack_derating * (arrays.fanin_count - 1)
    drive = current / stack - arrays.fanin_count * off
    return np.ascontiguousarray(
        np.broadcast_to(drive, (batch, arrays.n_gates)))


def _batch_segment(local_ptr: np.ndarray, values: np.ndarray, op,
                   empty: float) -> np.ndarray:
    """Row-wise segment reduction of a ``(B, E)`` value array."""
    rows = len(local_ptr) - 1
    result = np.full((values.shape[0], rows), empty)
    nonempty = np.diff(local_ptr) > 0
    if values.shape[1] and nonempty.any():
        result[:, nonempty] = op.reduceat(values, local_ptr[:-1][nonempty],
                                          axis=1)
    return result


def batch_external_caps(arrays: ArrayContext, w: np.ndarray, start: int,
                        stop: int) -> Tuple[np.ndarray, np.ndarray,
                                            np.ndarray]:
    """Batched ``(ext_cap, wire_rc, flight)`` for gate rows
    ``start:stop``; ``flight`` is width-independent and stays 1-D."""
    lo = arrays.fanout.ptr[start]
    hi = arrays.fanout.ptr[stop]
    is_gate = arrays.fanout_is_gate[lo:hi]
    caps = arrays.fanout_cap[lo:hi]
    sink_w = np.where(is_gate, w[:, arrays.fanout_safe_idx[lo:hi]],
                      arrays.ctx.BOUNDARY_WIDTH)
    cap_entries = np.where(is_gate, sink_w * caps, 0.0)
    rc_entries = arrays.branch_res[lo:hi] * (
        0.5 * arrays.branch_cap[lo:hi] + sink_w * caps)

    local_ptr = arrays.fanout.ptr[start:stop + 1] - lo
    ext = (arrays.wire_cap[start:stop] + arrays.boundary_cap[start:stop]
           + _batch_segment(local_ptr, cap_entries, np.add, 0.0))
    rc = _batch_segment(local_ptr, rc_entries, np.maximum, 0.0)
    flight = _ev._segment(
        _ev._CSR(local_ptr, arrays.fanout.indices[lo:hi]),
        arrays.branch_flight[lo:hi], np.maximum, 0.0)
    return ext, rc, flight


def batch_sta(arrays: ArrayContext, vdd: BatchValue, vth: BatchValue,
              w: np.ndarray, batch: int,
              currents=None) -> Tuple[np.ndarray, np.ndarray]:
    """Batched STA: ``(critical (B,), per-gate delays (B, n))``.

    ``currents`` lets a caller that already ran :func:`batch_currents`
    for these exact voltages (e.g. ``measure_batch``, which bills the
    same pairs for energy first) share the result — the stored doubles
    are identical either way, it only skips the recompute.
    """
    tech = arrays.ctx.tech
    n = arrays.n_gates
    with seam("sta", counter=STA_CALLS, calls=batch):
        drive = _batch_drive(arrays, vdd, vth, batch, currents)
        slope_k = batch_slope_coefficients(arrays, vdd, vth)
        k_vdd = tech.velocity_saturation_coeff * vdd.values

        ext, rc, flight = batch_external_caps(arrays, w, 0, n)
        load = w * arrays.self_cap + ext
        with np.errstate(divide="ignore", invalid="ignore"):
            switching = np.where(drive > 0.0, k_vdd * load / (drive * w),
                                 np.inf)
        fixed = switching + rc + flight

        delays = np.zeros((batch, n))
        arrivals = np.zeros((batch, n))
        for start, stop in reversed(arrays.level_slices):
            lo = arrays.fanin.ptr[start]
            hi = arrays.fanin.ptr[stop]
            idx = arrays.fanin.indices[lo:hi]
            local_ptr = arrays.fanin.ptr[start:stop + 1] - lo
            max_fanin_delay = _batch_segment(local_ptr, delays[:, idx],
                                             np.maximum, 0.0)
            max_fanin_arrival = _batch_segment(local_ptr, arrivals[:, idx],
                                               np.maximum, 0.0)
            delays[:, start:stop] = (_cols(slope_k, start, stop)
                                     * max_fanin_delay
                                     + fixed[:, start:stop])
            arrivals[:, start:stop] = (max_fanin_arrival
                                       + delays[:, start:stop])
        current_metrics().incr(DELAY_MODEL_CALLS, n * batch)

    network = arrays.ctx.network
    critical = np.zeros(batch)
    for name in network.outputs:
        position = arrays.index.get(name)
        if position is None:
            if not network.gate(name).is_input:
                raise TimingError(
                    f"output {name!r} is neither a logic gate nor a "
                    f"primary input")
            continue  # ideal primary input: arrival 0.0, never the max
        np.maximum(critical, arrivals[:, position], out=critical)
    return critical, delays


def batch_total_energy(arrays: ArrayContext, vdd: BatchValue,
                       vth: BatchValue, w: np.ndarray, frequency: float,
                       batch: int,
                       currents=None) -> Tuple[np.ndarray, np.ndarray]:
    """Batched eqs. A1 + A2: ``(static (B,), dynamic (B,))``.

    ``currents`` shares a precomputed :func:`batch_currents` result
    (see :func:`batch_sta`).
    """
    if frequency <= 0.0:
        raise OptimizationError(f"frequency must be > 0, got {frequency}")
    with seam("energy", counter=ENERGY_EVALUATIONS, calls=batch):
        _, off = (currents if currents is not None
                  else batch_currents(arrays, vdd, vth))
        ones = np.ones((batch, 1))
        static = np.sum((vdd.values * w * off / frequency) * ones, axis=1)

        ext, _, _ = batch_external_caps(arrays, w, 0, arrays.n_gates)
        load = w * arrays.self_cap + ext
        dynamic = np.sum(
            (0.5 * arrays.activity * vdd.values * vdd.values * load) * ones,
            axis=1)

        # Input-net term at the module IO rail (the row's highest rail).
        if not isinstance(vdd.values, np.ndarray):
            io_rail = vdd.values
        elif vdd.per_gate:
            io_rail = np.max(vdd.values, axis=1, keepdims=True)
        else:
            io_rail = vdd.values
        sink_entries = w[:, arrays.input_fanout.indices] \
            * arrays.input_fanout_cap
        sink_caps = _batch_segment(arrays.input_fanout.ptr, sink_entries,
                                   np.add, 0.0)
        input_load = (arrays.input_self_plus_wire + arrays.input_fixed_cap
                      + sink_caps)
        dynamic = dynamic + np.sum(
            (0.5 * arrays.input_activity * io_rail * io_rail * input_load)
            * np.ones((batch, 1)), axis=1)
    return static, dynamic


@dataclass(frozen=True)
class BatchSizing:
    """Batched sizing outcome: one verdict (and width row) per design."""

    widths: np.ndarray            # (B, n), internal order
    feasible: np.ndarray          # (B,) bool
    repaired: Tuple[Tuple[str, ...], ...]


def batch_size_widths(arrays: ArrayContext, budgets: np.ndarray,
                      vdd: BatchValue, vth: BatchValue, batch: int,
                      method: str = "closed_form", bisect_steps: int = 24,
                      repair_ceiling: Optional[float] = None) -> BatchSizing:
    """Batched minimum-width sizing (same semantics per row as
    ``fast_size_widths``; warm bisection seeds are not supported —
    warm-started searches take the looped path)."""
    if method not in ("closed_form", "bisect"):
        raise OptimizationError(f"unknown width-search method {method!r}")
    span_name = "width_bisect" if method == "bisect" else "width_search"
    with trace.span(span_name, method=method, engine="fast"), \
            seam("width_search", counter=WIDTH_SIZINGS, calls=batch):
        return _batch_size_widths(arrays, budgets, vdd, vth, batch,
                                  method, bisect_steps, repair_ceiling)


def _batch_size_widths(arrays: ArrayContext, budgets: np.ndarray,
                       vdd: BatchValue, vth: BatchValue, batch: int,
                       method: str, bisect_steps: int,
                       repair_ceiling: Optional[float]) -> BatchSizing:
    tech = arrays.ctx.tech
    n = arrays.n_gates
    drive = _batch_drive(arrays, vdd, vth, batch)
    # Subthreshold contention: those rows cannot switch at any width
    # (the single-design path short-circuits to width_max, infeasible).
    bad = np.any(drive <= 0.0, axis=1)

    slope_k = batch_slope_coefficients(arrays, vdd, vth)
    fanin_budget = arrays.segment_max(
        arrays.fanin, budgets[arrays.fanin.indices], empty=0.0)
    slope = np.ascontiguousarray(np.broadcast_to(
        slope_k * fanin_budget, (batch, n)))

    k_vdd = tech.velocity_saturation_coeff * vdd.values
    with np.errstate(all="ignore"):
        self_term = np.ascontiguousarray(np.broadcast_to(
            k_vdd * arrays.self_cap / drive, (batch, n)))

    w = np.ones((batch, n))
    feasible = ~bad
    needs_repair = np.zeros(batch, dtype=bool)
    with np.errstate(all="ignore"):
        for start, stop in arrays.level_slices:
            ext, rc, flight = batch_external_caps(arrays, w, start, stop)
            if method == "closed_form":
                available = (budgets[start:stop] - slope[:, start:stop]
                             - rc - flight - self_term[:, start:stop])
                ext_term = (_cols(k_vdd, start, stop) * ext
                            / drive[:, start:stop])
                needed = np.where(available > 0.0, ext_term / available,
                                  np.inf)
            else:
                needed = _batch_bisect_level(arrays, budgets, slope, rc,
                                             flight, k_vdd, drive, ext,
                                             start, stop, bisect_steps)
            failed_rows = np.any(needed > tech.width_max, axis=1)
            if repair_ceiling is not None:
                needs_repair |= failed_rows
            else:
                feasible &= ~failed_rows
            # Clamp uniformly: a no-op where nothing failed, the
            # single-design behaviour where sizing failed without
            # repair, and irrelevant on rows headed for the replay.
            needed = np.minimum(needed, tech.width_max)
            w[:, start:stop] = np.maximum(needed, tech.width_min)
    w[bad] = tech.width_max

    repaired: List[Tuple[str, ...]] = [()] * batch
    verify_rows: List[int] = []
    for b in np.flatnonzero(needs_repair & ~bad):
        row = _ev._size_with_repair(
            arrays, budgets, vdd.row(b), vth.row(b), drive[b],
            _row_coeff(slope_k, b), _row_coeff(k_vdd, b), method,
            bisect_steps, repair_ceiling, verify=False)
        w[b] = row.widths
        feasible[b] = row.feasible
        repaired[b] = row.repaired
        if row.feasible and row.repaired:
            verify_rows.append(int(b))
    if verify_rows:
        # Deferred repair verification: one batched STA over every
        # repaired-and-completed row instead of a full STA per row —
        # same per-row criticals (bit-identical), same counter totals.
        rows = np.asarray(verify_rows)
        critical, _ = batch_sta(arrays, vdd.take(rows), vth.take(rows),
                                np.ascontiguousarray(w[rows]), len(rows))
        # ~(> ceiling), not (<= ceiling): identical to the looped check
        # even for NaN criticals (NaN compares False either way).
        feasible[rows] &= ~(critical > repair_ceiling * (1.0 + 1e-9))
    return BatchSizing(widths=w, feasible=feasible,
                       repaired=tuple(repaired))


def _row_coeff(value, b: int):
    """Row ``b`` of a float / (B,1) / (1,n) / (B,n) coefficient, in the
    single-design form (float or ``(n,)``)."""
    if not isinstance(value, np.ndarray):
        return value
    if value.shape[1] == 1:
        return float(value[min(b, value.shape[0] - 1), 0])
    return value[min(b, value.shape[0] - 1)]


def _batch_bisect_level(arrays: ArrayContext, budgets: np.ndarray,
                        slope: np.ndarray, rc: np.ndarray,
                        flight: np.ndarray, k_vdd, drive: np.ndarray,
                        ext: np.ndarray, start: int, stop: int,
                        steps: int) -> np.ndarray:
    """``_bisect_level`` with a leading design axis (no warm probes)."""
    tech = arrays.ctx.tech
    k_lvl = _cols(k_vdd, start, stop)
    drive_lvl = drive[:, start:stop]
    self_lvl = arrays.self_cap[start:stop]
    fixed = slope[:, start:stop] + rc + flight
    budget = budgets[start:stop]

    def delay_at(width):
        load = width * self_lvl + ext
        return fixed + k_lvl * load / (drive_lvl * width)

    feasible_at_max = delay_at(tech.width_max) <= budget
    done_at_min = delay_at(tech.width_min) <= budget

    low = np.full(ext.shape, tech.width_min)
    high = np.full(ext.shape, tech.width_max)
    for _ in range(steps):
        mid = 0.5 * (low + high)
        meets = delay_at(mid) <= budget
        high = np.where(meets, mid, high)
        low = np.where(meets, low, mid)
    return np.where(feasible_at_max,
                    np.where(done_at_min, tech.width_min, high),
                    np.inf)
