"""Flat NumPy mirrors of a :class:`~repro.context.CircuitContext`.

Gates are indexed ``0..N-1`` in *reverse topological order* (the width
search's processing order), so per-level slices are contiguous both for
the reverse sweep (sizing) and, reversed, for the forward sweep (STA).
Fanin and fanout adjacency is CSR: ``ptr[i]:ptr[i+1]`` delimits gate
``i``'s entries, enabling ``np.maximum.reduceat`` / ``np.add.reduceat``
segment reductions.

Primary inputs are not gates; fanins that are primary inputs are simply
absent from the fanin CSR (their delay/budget contribution is zero, their
dynamic energy is handled by a dedicated input-net term mirroring
``repro.power.energy``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.context import CircuitContext


@dataclass(frozen=True)
class _CSR:
    """One CSR adjacency: ``indices[ptr[i]:ptr[i+1]]`` belong to row i."""

    ptr: np.ndarray
    indices: np.ndarray

    @property
    def row_lengths(self) -> np.ndarray:
        return np.diff(self.ptr)


class ArrayContext:
    """Precomputed array state for one :class:`CircuitContext`."""

    def __init__(self, ctx: CircuitContext):
        self.ctx = ctx
        network = ctx.network

        # Gate order: descending level (a valid reverse-topological order —
        # every fanout sits at a strictly higher level — with contiguous
        # level groups), stable in topological position within a level.
        topo_position = {name: i
                         for i, name in enumerate(network.topological_order())}
        self.gate_names: Tuple[str, ...] = tuple(sorted(
            ctx.gates,
            key=lambda name: (-network.level(name), topo_position[name])))
        self.index: Dict[str, int] = {name: i
                                      for i, name in enumerate(self.gate_names)}
        n = len(self.gate_names)
        self.n_gates = n

        levels = [network.level(name) for name in self.gate_names]
        slices: List[Tuple[int, int]] = []
        start = 0
        for i in range(1, n + 1):
            if i == n or levels[i] != levels[start]:
                slices.append((start, i))
                start = i
        #: (start, stop) per level group, in processing order.
        self.level_slices: Tuple[Tuple[int, int], ...] = tuple(slices)

        # Per-gate scalars.
        self.fanin_count = np.empty(n, dtype=np.int64)
        self.self_cap = np.empty(n)
        self.activity = np.empty(n)
        self.wire_cap = np.empty(n)
        for i, name in enumerate(self.gate_names):
            info = ctx.info(name)
            self.fanin_count[i] = info.fanin_count
            self.self_cap[i] = info.self_cap
            self.activity[i] = info.activity
            self.wire_cap[i] = info.wire_cap

        # Fanout CSR with per-entry receiver caps and branch parasitics.
        fanout_ptr = [0]
        fanout_idx: List[int] = []
        fanout_cap: List[float] = []
        branch_res: List[float] = []
        branch_cap: List[float] = []
        branch_flight: List[float] = []
        boundary_cap: List[float] = []   # per gate: width-independent sinks
        for name in self.gate_names:
            info = ctx.info(name)
            fixed = 0.0
            for sink, cap, b_cap, b_res, b_flt in zip(
                    info.fanout_names, info.fanout_input_caps,
                    info.branch_caps, info.branch_resistances,
                    info.branch_flights):
                if sink == "":
                    # Boundary branch: unit-width receiver, fold into the
                    # fixed cap; RC/flight handled via the branch arrays
                    # with a sentinel receiver of fixed width.
                    fixed += ctx.BOUNDARY_WIDTH * cap
                    fanout_idx.append(-1)
                else:
                    fanout_idx.append(self.index[sink])
                fanout_cap.append(cap)
                branch_res.append(b_res)
                branch_cap.append(b_cap)
                branch_flight.append(b_flt)
            boundary_cap.append(fixed)
            fanout_ptr.append(len(fanout_idx))
        self.fanout = _CSR(np.asarray(fanout_ptr, dtype=np.int64),
                           np.asarray(fanout_idx, dtype=np.int64))
        self.fanout_cap = np.asarray(fanout_cap)
        self.branch_res = np.asarray(branch_res)
        self.branch_cap = np.asarray(branch_cap)
        self.branch_flight = np.asarray(branch_flight)
        self.boundary_cap = np.asarray(boundary_cap)
        #: True where the CSR entry is a real gate (width looked up).
        self.fanout_is_gate = self.fanout.indices >= 0
        #: Gather-safe sink indices: boundary sentinels (-1) clamped to 0
        #: so ``w[fanout_safe_idx]`` is a single flat gather; the bogus
        #: row-0 widths are masked off by ``fanout_is_gate``. Precomputed
        #: once here — the per-evaluation boolean-mask gather it replaces
        #: was superlinear on wide-fanout rows (two fancy indexes plus a
        #: fill per level, per call).
        self.fanout_safe_idx = np.where(self.fanout_is_gate,
                                        self.fanout.indices, 0)

        # Fanin CSR (logic-gate fanins only; PI fanins contribute zero).
        fanin_ptr = [0]
        fanin_idx: List[int] = []
        for name in self.gate_names:
            info = ctx.info(name)
            for fanin in info.fanin_names:
                if fanin in self.index:
                    fanin_idx.append(self.index[fanin])
            fanin_ptr.append(len(fanin_idx))
        self.fanin = _CSR(np.asarray(fanin_ptr, dtype=np.int64),
                          np.asarray(fanin_idx, dtype=np.int64))

        # Input nets: activity and width-independent/width-dependent loads
        # for the module-port dynamic-energy term.
        input_names = list(network.inputs)
        self.input_activity = np.asarray(
            [ctx.info(name).activity for name in input_names])
        self.input_self_plus_wire = np.asarray(
            [1.0 * ctx.info(name).self_cap + ctx.info(name).wire_cap
             for name in input_names])
        in_ptr = [0]
        in_idx: List[int] = []
        in_cap: List[float] = []
        in_fixed: List[float] = []
        for name in input_names:
            info = ctx.info(name)
            fixed = 0.0
            for sink, cap in zip(info.fanout_names, info.fanout_input_caps):
                if sink == "":
                    fixed += ctx.BOUNDARY_WIDTH * cap
                else:
                    in_idx.append(self.index[sink])
                    in_cap.append(cap)
            in_fixed.append(fixed)
            in_ptr.append(len(in_idx))
        self.input_fanout = _CSR(np.asarray(in_ptr, dtype=np.int64),
                                 np.asarray(in_idx, dtype=np.int64))
        self.input_fanout_cap = np.asarray(in_cap)
        self.input_fixed_cap = np.asarray(in_fixed)

        #: Array indices in the scalar width search's exact processing
        #: order (``ctx.gates_reversed``). The vectorized level sweep
        #: visits gates in level-contiguous order; budget *repair*
        #: mutates driver budgets as it goes, so replaying repair
        #: corners must follow the scalar order to stay equivalent.
        self.scalar_order = np.asarray(
            [self.index[name] for name in ctx.gates_reversed],
            dtype=np.int64)

    # --- helpers -----------------------------------------------------------

    def python_view(self) -> "PythonView":
        """Plain-Python list mirrors of the adjacency, built lazily.

        The scalar-order budget-repair replay visits gates one at a
        time; per-gate NumPy calls on 2-4-element slices cost ~30x their
        arithmetic, so the replay walks these plain lists instead. Built
        on first use and cached (the arrays are immutable after
        construction).
        """
        view = getattr(self, "_python_view", None)
        if view is None:
            view = PythonView(self)
            self._python_view = view
        return view

    def widths_to_array(self, widths: Dict[str, float]) -> np.ndarray:
        """A ``{name: w}`` map in processing order."""
        return np.asarray([widths[name] for name in self.gate_names])

    def array_to_widths(self, array: np.ndarray) -> Dict[str, float]:
        return {name: float(array[i])
                for i, name in enumerate(self.gate_names)}

    def budgets_to_array(self, budgets: Dict[str, float]) -> np.ndarray:
        return np.asarray([budgets[name] for name in self.gate_names])

    def values_to_array(self, value: "float | Mapping[str, float]"
                        ) -> "float | np.ndarray":
        """A per-gate value (scalar or ``{name: v}`` map) in array order.

        Scalars pass through unchanged so downstream kernels keep the
        exact scalar arithmetic of the global-voltage hot path; mappings
        become vectors aligned with :attr:`gate_names`.
        """
        if isinstance(value, Mapping):
            return np.asarray([value[name] for name in self.gate_names],
                              dtype=float)
        return float(value)

    def segment_sum(self, csr: _CSR, values: np.ndarray) -> np.ndarray:
        """Per-row sums of ``values`` (aligned with csr.indices)."""
        result = np.zeros(len(csr.ptr) - 1)
        nonempty = csr.row_lengths > 0
        if values.size:
            sums = np.add.reduceat(values, csr.ptr[:-1][nonempty])
            result[nonempty] = sums
        return result

    def segment_max(self, csr: _CSR, values: np.ndarray,
                    empty: float = 0.0) -> np.ndarray:
        """Per-row maxima of ``values`` (``empty`` for empty rows)."""
        result = np.full(len(csr.ptr) - 1, empty)
        nonempty = csr.row_lengths > 0
        if values.size:
            maxima = np.maximum.reduceat(values, csr.ptr[:-1][nonempty])
            result[nonempty] = maxima
        return result


class PythonView:
    """Plain-Python (list) mirrors of an :class:`ArrayContext`.

    See :meth:`ArrayContext.python_view`. Every attribute is a built-in
    ``list`` (or ``float``), so the repair replay's per-gate loop runs
    without NumPy scalar-boxing overhead.
    """

    def __init__(self, arrays: ArrayContext):
        self.boundary_width = float(arrays.ctx.BOUNDARY_WIDTH)
        self.fanout_ptr: List[int] = arrays.fanout.ptr.tolist()
        self.fanout_idx: List[int] = arrays.fanout.indices.tolist()
        self.fanout_cap: List[float] = arrays.fanout_cap.tolist()
        self.branch_res: List[float] = arrays.branch_res.tolist()
        self.branch_cap: List[float] = arrays.branch_cap.tolist()
        self.branch_flight: List[float] = arrays.branch_flight.tolist()
        self.wire_cap: List[float] = arrays.wire_cap.tolist()
        self.boundary_cap: List[float] = arrays.boundary_cap.tolist()
        self.self_cap: List[float] = arrays.self_cap.tolist()
        self.fanin_ptr: List[int] = arrays.fanin.ptr.tolist()
        self.fanin_idx: List[int] = arrays.fanin.indices.tolist()
        self.scalar_order: List[int] = arrays.scalar_order.tolist()
