"""Static back-bias threshold adjustment (the paper's Figure 1).

The paper proposes manufacturing with *natural* (un-implanted, low-Vth)
devices and setting the desired threshold voltage statically by reverse
biasing the p-substrate (for nmos) and the n-wells (for pmos). The standard
body-effect relation maps a source-to-body reverse bias ``Vsb`` to an
effective threshold::

    Vth(Vsb) = Vth_natural + gamma * (sqrt(2*phi_F + Vsb) - sqrt(2*phi_F))

This module provides both directions: the forward body-effect curve and
the inverse ("what substrate/n-well bias realizes the Vth the optimizer
chose?"), which is what a designer applying the paper's Figure 1 scheme
actually needs.
"""

from __future__ import annotations

import math

from repro.errors import TechnologyError
from repro.technology.process import Technology


def body_effect_vth(tech: Technology, reverse_bias: float) -> float:
    """Effective threshold voltage under a source-body reverse bias (V).

    ``reverse_bias`` is the magnitude of the reverse bias (>= 0): the
    substrate voltage below ground for nmos, or the n-well voltage above
    ``Vdd`` for pmos (the model is symmetric in this abstraction).
    """
    if reverse_bias < 0.0:
        raise TechnologyError(
            f"reverse_bias must be >= 0 (forward body bias is outside the "
            f"paper's static scheme), got {reverse_bias}")
    phi = tech.surface_potential
    return (tech.vth_natural
            + tech.body_effect_gamma * (math.sqrt(phi + reverse_bias)
                                        - math.sqrt(phi)))


def bias_for_target_vth(tech: Technology, vth_target: float) -> float:
    """Reverse bias (V) realizing ``vth_target``; inverse of the body effect.

    Closed form: with ``d = (vth_target - vth_natural)/gamma + sqrt(phi)``,
    the bias is ``d^2 - phi``. Raises if the target is below the natural
    threshold (the static scheme can only *raise* Vth) or absurdly high.
    """
    if vth_target < tech.vth_natural:
        raise TechnologyError(
            f"target Vth {vth_target:.3f} V is below the natural threshold "
            f"{tech.vth_natural:.3f} V; static reverse bias can only raise Vth")
    phi = tech.surface_potential
    root = (vth_target - tech.vth_natural) / tech.body_effect_gamma + math.sqrt(phi)
    bias = root * root - phi
    if bias > 20.0:
        raise TechnologyError(
            f"target Vth {vth_target:.3f} V needs an unrealistic reverse "
            f"bias of {bias:.1f} V")
    return bias


def max_adjustable_vth(tech: Technology, max_bias: float = 5.0) -> float:
    """Highest Vth reachable with at most ``max_bias`` volts of reverse bias."""
    if max_bias < 0.0:
        raise TechnologyError(f"max_bias must be >= 0, got {max_bias}")
    return body_effect_vth(tech, max_bias)
