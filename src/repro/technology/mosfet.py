"""Transregional MOSFET drain-current model.

The paper's delay model (Appendix A.2) is built on a *transregional*
extension of the Sakurai–Newton alpha-power saturation current law [9]:
it must be accurate both in strong inversion (``Vdd > Vth``) and in
subthreshold (``Vdd <= Vth``), because the optimizer deliberately explores
supply voltages below threshold when the delay target is loose.

We implement a single smooth formula with the two correct asymptotes:

* strong inversion: ``I/w = B * (Vgs - Vth)^alpha`` (alpha-power law, with
  ``B`` calibrated so the reference corner of the technology deck
  reproduces ``idsat_reference``),
* subthreshold:     ``I/w = i0 * exp((Vgs - Vth) / (n * vT))`` (anchored at
  the deck's ``subthreshold_i0``, i.e. ``I_off = i0 * 10^(-Vth/S)``),

blended by a softplus of the gate overdrive::

    I/w = B * (n*vT*alpha * softplus((Vgs - Vth') / (n*vT*alpha)))^alpha

where ``softplus(x) = ln(1 + e^x)`` and ``Vth' = Vth - dV`` is a small
threshold shift that makes the subthreshold asymptote hit the ``i0``
anchor exactly. ``B`` is then re-calibrated (fixed point, converges in a
couple of iterations) so the strong-inversion reference corner is exact
too. A drain-saturation factor ``(1 - exp(-Vds/vT))`` models the loss of
drive at very small drain bias.

The model is monotonically increasing in ``Vgs`` and decreasing in
``Vth`` — properties the paper's binary searches rely on and that the test
suite checks with hypothesis.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Tuple

from repro.errors import TechnologyError
from repro.technology.process import Technology


def _softplus(x: float) -> float:
    """Numerically-safe ``ln(1 + e^x)``."""
    if x > 40.0:
        return x
    if x < -40.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


@lru_cache(maxsize=128)
def _transregional_params(tech: Technology) -> Tuple[float, float, float]:
    """Calibrated ``(B, threshold_shift, blend_voltage)`` for a deck.

    ``B`` is the alpha-power current factor, ``threshold_shift`` the small
    ``dV`` aligning the subthreshold asymptote with ``subthreshold_i0`` and
    ``blend_voltage`` the softplus scale ``n * vT * alpha``.
    """
    n_vt = tech.ideality * tech.thermal_voltage
    blend = n_vt * tech.alpha
    b_factor = tech.current_factor
    shift = 0.0
    overdrive_ref = tech.vdd_reference - tech.vth_reference
    for _ in range(8):
        # Align the subthreshold asymptote with the i0 anchor.
        prefactor = b_factor * blend ** tech.alpha
        shift = n_vt * math.log(tech.subthreshold_i0 / prefactor)
        # Re-calibrate B so the reference corner is exact with the shift.
        raw = (blend * _softplus((overdrive_ref + shift) / blend)) ** tech.alpha
        b_factor = tech.idsat_reference / raw
    return b_factor, shift, blend


def saturation_current_per_width(tech: Technology, vgs: float, vth: float) -> float:
    """Pure alpha-power saturation current per unit width (no subthreshold).

    Returns 0 for ``vgs <= vth``. Mostly useful for tests and for comparing
    against the transregional model; the optimizer uses
    :func:`drain_current_per_width`.
    """
    overdrive = vgs - vth
    if overdrive <= 0.0:
        return 0.0
    return tech.current_factor * overdrive ** tech.alpha


def subthreshold_current_per_width(tech: Technology, vgs: float, vth: float,
                                   vds: float | None = None) -> float:
    """Pure subthreshold (weak-inversion) current per unit width.

    ``I/w = i0 * exp((vgs - vth)/(n vT)) * (1 - exp(-vds/vT))``. With
    ``vds=None`` the drain factor is taken as 1 (drain in full saturation).
    """
    n_vt = tech.ideality * tech.thermal_voltage
    current = tech.subthreshold_i0 * math.exp((vgs - vth) / n_vt)
    if vds is not None:
        current *= _drain_saturation_factor(tech, vds)
    return current


def _drain_saturation_factor(tech: Technology, vds: float) -> float:
    """``1 - exp(-Vds/vT)`` drain-bias factor, clamped to [0, 1]."""
    if vds <= 0.0:
        return 0.0
    return -math.expm1(-vds / tech.thermal_voltage)


def drain_current_per_width(tech: Technology, vgs: float, vth: float,
                            vds: float | None = None) -> float:
    """Transregional switching drain current per unit feature-size width (A).

    This is the paper's ``I_Diw``: the worst-case drive of a switching
    MOSFET with its gate at ``vgs`` (normally ``Vdd``) and the given
    threshold voltage. Valid and smooth across the sub/superthreshold
    boundary. ``vds`` defaults to ``vgs`` (output swinging from the rail).
    """
    if vgs < 0.0:
        raise TechnologyError(f"vgs must be >= 0, got {vgs}")
    if vth <= 0.0:
        raise TechnologyError(f"vth must be > 0, got {vth}")
    b_factor, shift, blend = _transregional_params(tech)
    effective_overdrive = blend * _softplus((vgs - vth + shift) / blend)
    current = b_factor * effective_overdrive ** tech.alpha
    drain_bias = vgs if vds is None else vds
    return current * _drain_saturation_factor(tech, drain_bias)


def transconductance_per_width(tech: Technology, vgs: float, vth: float,
                               step: float = 1e-4) -> float:
    """Numerical ``dI/dVgs`` per unit width (A/V), central difference.

    Used by tests to check smoothness across the transregional boundary and
    by the sensitivity reports.
    """
    lo = max(vgs - step, 0.0)
    hi = vgs + step
    i_lo = drain_current_per_width(tech, lo, vth, vds=vgs)
    i_hi = drain_current_per_width(tech, hi, vth, vds=vgs)
    return (i_hi - i_lo) / (hi - lo)
