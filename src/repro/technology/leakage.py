"""Static (off-state) leakage models.

Appendix A.1 of the paper includes two contributors to the static
dissipation of a gate:

* subthreshold conduction through the (nominally off) MOSFET channel,
* reverse leakage of the drain junction diodes.

Both are per unit feature-size width, matching the paper's
``E_si = Vdd * w_i * I_off / f_c`` form where ``w_i`` is the gate's width
multiplier.
"""

from __future__ import annotations

import math

from repro.errors import TechnologyError
from repro.technology.process import Technology


def subthreshold_off_current_per_width(tech: Technology, vth: float,
                                       vds: float | None = None) -> float:
    """Subthreshold channel leakage per unit width at ``Vgs = 0`` (A).

    ``I_sub = i0 * 10^(-vth / S)`` — the textbook exponential dependence on
    the threshold voltage that drives the whole optimization: as the
    optimizer lowers ``Vth`` to keep speed at low ``Vdd``, this term grows
    by one decade per subthreshold-slope's worth of reduction.
    """
    if vth <= 0.0:
        raise TechnologyError(f"vth must be > 0, got {vth}")
    current = tech.subthreshold_i0 * 10.0 ** (-vth / tech.subthreshold_slope)
    if vds is not None:
        if vds < 0.0:
            raise TechnologyError(f"vds must be >= 0, got {vds}")
        current *= -math.expm1(-vds / tech.thermal_voltage)
    return current


def junction_leakage_per_width(tech: Technology) -> float:
    """Drain-junction reverse leakage per unit width (A).

    Modelled as bias-independent (a reverse-biased diode's saturation
    current); orders of magnitude below subthreshold leakage except at very
    high ``Vth``.
    """
    return tech.junction_leakage


def off_current_per_width(tech: Technology, vth: float,
                          vds: float | None = None) -> float:
    """Total off current ``I_off`` per unit feature-size width (A).

    The quantity that enters the paper's static energy
    ``E_si = Vdd * w_i * I_off / f_c`` (Appendix A.1, eq. A1).
    """
    return (subthreshold_off_current_per_width(tech, vth, vds=vds)
            + junction_leakage_per_width(tech))


def leakage_decades_saved(tech: Technology, vth_from: float, vth_to: float) -> float:
    """How many decades of subthreshold leakage separate two thresholds.

    Positive when ``vth_to > vth_from`` (raising Vth saves leakage).
    Handy for reports: ``(vth_to - vth_from) / S``.
    """
    if vth_from <= 0.0 or vth_to <= 0.0:
        raise TechnologyError("thresholds must be positive")
    return (vth_to - vth_from) / tech.subthreshold_slope
