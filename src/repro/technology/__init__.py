"""Device technology description and MOSFET models.

This subpackage implements the paper's device substrate:

* :class:`~repro.technology.process.Technology` — the process deck
  (feature size, current factors, subthreshold slope, capacitances,
  interconnect parasitics).
* :mod:`~repro.technology.mosfet` — the transregional drain-current model:
  Sakurai–Newton alpha-power law in strong inversion, exponential
  subthreshold conduction below threshold, smoothly blended so the
  optimizer may push ``Vdd`` below ``Vth`` (Appendix A.2 of the paper).
* :mod:`~repro.technology.leakage` — ``I_off`` (subthreshold + junction).
* :mod:`~repro.technology.capacitance` — gate parasitic/input/intermediate
  capacitances per unit width (Appendix A.1).
* :mod:`~repro.technology.backbias` — body-effect model for the static
  substrate/n-well reverse bias scheme of Figure 1.
"""

from repro.technology.process import Technology
from repro.technology.mosfet import (
    drain_current_per_width,
    saturation_current_per_width,
    subthreshold_current_per_width,
)
from repro.technology.leakage import off_current_per_width, junction_leakage_per_width
from repro.technology.capacitance import GateCapacitances, gate_capacitances
from repro.technology.backbias import body_effect_vth, bias_for_target_vth
from repro.technology.library import (
    deck,
    deck_names,
    load_technology,
    save_technology,
)

__all__ = [
    "Technology",
    "drain_current_per_width",
    "saturation_current_per_width",
    "subthreshold_current_per_width",
    "off_current_per_width",
    "junction_leakage_per_width",
    "GateCapacitances",
    "gate_capacitances",
    "body_effect_vth",
    "bias_for_target_vth",
    "deck",
    "deck_names",
    "load_technology",
    "save_technology",
]
