"""Gate capacitance models (Appendix A.1 symbols).

The dynamic energy of gate *i* in the paper is::

    E_di = 1/2 * a_i * Vdd^2 * [ w_i * (C_PDi + (f_ii - 1) * C_mi)
                                 + sum_j (w_ij * C_tij + C_INTij) ]

so the load at a gate's output node has three device contributions, each
proportional to a device width:

* ``C_PD``  — its own parasitic (overlap + junction + fringe) capacitance,
* ``C_mi``  — intermediate nodes of its series stack (one per extra input),
* ``C_t``   — the input (gate oxide) capacitance of each fanout gate,

plus the interconnect capacitance ``C_INT`` of the output net, supplied by
the stochastic wire-length model (:mod:`repro.interconnect`).

This module centralizes those per-unit-width values and the simple
load-assembly arithmetic so the energy and delay models cannot disagree
about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import TechnologyError
from repro.technology.process import Technology


@dataclass(frozen=True)
class GateCapacitances:
    """Per-unit-width capacitances of a gate of a given fanin.

    Attributes
    ----------
    input_cap:
        ``C_t`` — capacitance presented to each driver per unit of this
        gate's width (F). Includes the ``(1 + beta)`` factor for the
        complementary pmos/nmos pair sharing the input.
    self_cap:
        ``C_PD + (fanin - 1) * C_mi`` — output-node parasitics per unit of
        this gate's own width (F).
    """

    input_cap: float
    self_cap: float


def gate_capacitances(tech: Technology, fanin: int) -> GateCapacitances:
    """Capacitance coefficients for a symmetric ``fanin``-input static gate.

    The pmos device is ``beta_ratio`` times wider than the nmos, so a unit
    width multiplier ``w = 1`` loads each input with
    ``(1 + beta) * c_gate`` and puts ``(1 + beta) * c_parasitic`` plus the
    series-stack intermediate nodes on the output.
    """
    if fanin < 1:
        raise TechnologyError(f"fanin must be >= 1, got {fanin}")
    width_factor = 1.0 + tech.beta_ratio
    input_cap = width_factor * tech.c_gate
    self_cap = width_factor * tech.c_parasitic
    self_cap += (fanin - 1) * tech.c_intermediate
    return GateCapacitances(input_cap=input_cap, self_cap=self_cap)


def output_load(tech: Technology, fanin: int, width: float,
                fanout_widths: Sequence[float], fanout_fanins: Sequence[int],
                wire_cap: float) -> float:
    """Total switched capacitance at a gate's output node (F).

    Parameters mirror eq. (A2): the gate's own width ``width`` scales its
    parasitics; each fanout gate ``j`` contributes its input capacitance
    scaled by its own width ``fanout_widths[j]``; ``wire_cap`` is the net's
    interconnect capacitance ``sum_j C_INTij``.
    """
    if len(fanout_widths) != len(fanout_fanins):
        raise TechnologyError(
            "fanout_widths and fanout_fanins must have equal length, got "
            f"{len(fanout_widths)} and {len(fanout_fanins)}")
    if wire_cap < 0.0:
        raise TechnologyError(f"wire_cap must be >= 0, got {wire_cap}")
    own = gate_capacitances(tech, fanin)
    load = width * own.self_cap + wire_cap
    for fo_width, fo_fanin in zip(fanout_widths, fanout_fanins):
        load += fo_width * gate_capacitances(tech, fo_fanin).input_cap
    return load
