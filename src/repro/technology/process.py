"""Process/technology description.

The paper assumes "a device technology" as a given (§2). This module makes
that input concrete: a :class:`Technology` value object holding every
process-dependent parameter used by the drain-current, leakage, capacitance,
interconnect and delay models.

The default deck (:meth:`Technology.default`) is a 0.25 µm-class CMOS
process of the kind the 1997 paper targets:

* nominal ``Vdd`` 3.3 V, nominal ``Vth`` 0.7 V,
* saturation drive around 300 µA/µm at the nominal corner,
* 95 mV/decade subthreshold slope,
* alpha-power exponent α = 1.2 (velocity saturation plus the
  quasi-ballistic velocity-overshoot enhancement the paper's drain-current
  model incorporates).

All values are plain SI units (see :mod:`repro.units`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace, field, fields

from repro.constants import (
    ROOM_TEMPERATURE,
    subthreshold_slope_to_ideality,
    thermal_voltage,
)
from repro.errors import TechnologyError


@dataclass(frozen=True)
class Technology:
    """Immutable description of a CMOS process.

    Parameters mirror the symbols of the paper's Appendix A. Widths are
    everywhere expressed as dimensionless multiples ``w`` of the minimum
    feature-size width ``F`` (the paper's convention ``w_i >= 1``), so all
    per-width parameters below are *per unit feature-size width*, i.e. the
    physical quantity for a device of width ``w`` is ``value * w``.
    """

    name: str = "generic-0.25um"

    #: Minimum feature size F (m). Device width ``w`` is in multiples of F.
    feature_size: float = 0.25e-6

    #: Alpha-power-law exponent (Sakurai–Newton). 2.0 is the long-channel
    #: square law; deep-submicron velocity saturation plus quasi-ballistic
    #: velocity overshoot (both included in the paper's drain-current
    #: model) push it toward 1.2.
    alpha: float = 1.2

    #: Saturation drain current per unit feature-size width at the reference
    #: corner ``(vdd_reference, vth_reference)`` (A). With F = 0.25 µm and
    #: 300 µA/µm this is 75 µA per unit width.
    idsat_reference: float = 75e-6

    #: Reference gate drive at which ``idsat_reference`` is quoted (V).
    vdd_reference: float = 3.3
    vth_reference: float = 0.7

    #: Subthreshold slope S (V/decade).
    subthreshold_slope: float = 0.095

    #: Subthreshold current per unit feature-size width extrapolated to
    #: ``Vgs = Vth`` (A). This anchors I_off: I_off(Vth) = i0 * 10^(-Vth/S).
    subthreshold_i0: float = 0.8e-6

    #: Drain-junction (diode) leakage per unit feature-size width (A).
    junction_leakage: float = 1e-15

    #: Operating temperature (K).
    temperature: float = ROOM_TEMPERATURE

    # --- capacitances, per unit feature-size width (F) ----------------------

    #: Input (gate) capacitance C_t per unit width (F).
    c_gate: float = 0.45e-15

    #: Output parasitic (overlap + junction + fringe) C_PD per unit width (F).
    c_parasitic: float = 0.20e-15

    #: Intermediate-node capacitance C_mi of series stacks per unit width (F).
    c_intermediate: float = 0.10e-15

    # --- circuit style -------------------------------------------------------

    #: pmos/nmos width ratio β (paper's delay model, >= 1).
    beta_ratio: float = 2.0

    #: Series-stack drive derating: the worst-case switching current of an
    #: ``f``-high stack is the single-device current divided by
    #: ``1 + stack_derating * (f - 1)``. 1.0 is the naive series-resistance
    #: limit; measured stacks derate more mildly (body effect on the upper
    #: devices is offset by the intermediate nodes being pre-discharged),
    #: so 0.45 matches the paper's I_Diw(f_ii) behaviour.
    stack_derating: float = 0.45

    #: Velocity-saturation coefficient (the paper's ½ <= coeff <= 1 factor
    #: multiplying the switching term; 0.5 recovers the classic CV/2I form).
    velocity_saturation_coeff: float = 0.5

    # --- interconnect ---------------------------------------------------------

    #: Wire capacitance per metre (F/m). 0.2 fF/µm is a mid-1990s value.
    wire_cap_per_meter: float = 0.2e-9

    #: Wire resistance per metre (ohm/m). 0.08 ohm/µm.
    wire_res_per_meter: float = 0.08e6

    #: Signal propagation (time-of-flight) velocity on wires (m/s).
    wire_velocity: float = 1.5e8

    #: Average gate pitch (m) used to convert wirelength in "gate pitches"
    #: (from the stochastic wirelength model) into metres.
    gate_pitch: float = 4.0e-6

    # --- search-space bounds (paper §4.3, Procedure 2) ------------------------

    vdd_min: float = 0.1
    vdd_max: float = 3.3
    vth_min: float = 0.1
    vth_max: float = 0.7
    width_min: float = 1.0
    width_max: float = 100.0

    # --- body-effect parameters (Figure 1 back-bias scheme) -------------------

    #: Zero-bias (natural) threshold voltage of the un-implanted device (V).
    #: The Figure 1 scheme starts from low-Vth natural devices and raises
    #: Vth by static reverse bias, so this sits below the optimizer's
    #: typical 100-300 mV choices.
    vth_natural: float = 0.1

    #: Body-effect coefficient γ (V^0.5).
    body_effect_gamma: float = 0.4

    #: Surface potential 2φ_F (V).
    surface_potential: float = 0.6

    def __post_init__(self) -> None:
        self.validate()

    # --- derived quantities ----------------------------------------------------

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the operating temperature (V)."""
        return thermal_voltage(self.temperature)

    @property
    def ideality(self) -> float:
        """Subthreshold ideality factor n = S / (vT ln 10)."""
        return subthreshold_slope_to_ideality(self.subthreshold_slope,
                                              self.temperature)

    @property
    def current_factor(self) -> float:
        """Alpha-power current factor B such that Idsat = B (Vgs - Vth)^α.

        Calibrated so the reference corner reproduces ``idsat_reference``.
        Units: A / V^α per unit feature-size width.
        """
        overdrive = self.vdd_reference - self.vth_reference
        return self.idsat_reference / overdrive ** self.alpha

    def off_current_per_width(self, vth: float) -> float:
        """Shortcut to :func:`repro.technology.leakage.off_current_per_width`."""
        from repro.technology import leakage

        return leakage.off_current_per_width(self, vth)

    def drain_current_per_width(self, vdd: float, vth: float) -> float:
        """Shortcut to :func:`repro.technology.mosfet.drain_current_per_width`."""
        from repro.technology import mosfet

        return mosfet.drain_current_per_width(self, vdd, vth)

    # --- constructors -----------------------------------------------------------

    @classmethod
    def default(cls) -> "Technology":
        """The documented 0.25 µm-class deck used by all experiments."""
        return cls()

    @classmethod
    def scaled(cls, feature_size: float, name: str | None = None) -> "Technology":
        """A crude constant-field scaling of the default deck.

        Used by the technology-selection analysis to ask "what Vth would the
        optimizer pick for a future process?". Capacitances and drive scale
        linearly with feature size; wire parasitics scale with pitch.
        """
        base = cls.default()
        if feature_size <= 0.0:
            raise TechnologyError(
                f"feature_size must be positive, got {feature_size}")
        ratio = feature_size / base.feature_size
        return replace(
            base,
            name=name or f"scaled-{feature_size * 1e6:.3g}um",
            feature_size=feature_size,
            idsat_reference=base.idsat_reference * ratio,
            subthreshold_i0=base.subthreshold_i0 * ratio,
            junction_leakage=base.junction_leakage * ratio,
            c_gate=base.c_gate * ratio,
            c_parasitic=base.c_parasitic * ratio,
            c_intermediate=base.c_intermediate * ratio,
            gate_pitch=base.gate_pitch * ratio,
            wire_res_per_meter=base.wire_res_per_meter / ratio,
        )

    def with_overrides(self, **overrides: float) -> "Technology":
        """Return a copy with the given fields replaced (validated)."""
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise TechnologyError(
                f"unknown technology field(s): {sorted(unknown)}")
        return replace(self, **overrides)

    # --- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`TechnologyError` if the deck is inconsistent."""
        positive = [
            "feature_size", "alpha", "idsat_reference", "subthreshold_slope",
            "subthreshold_i0", "temperature", "c_gate", "c_parasitic",
            "c_intermediate", "beta_ratio", "wire_cap_per_meter",
            "wire_res_per_meter", "wire_velocity", "gate_pitch",
            "body_effect_gamma", "surface_potential",
        ]
        for field_name in positive:
            value = getattr(self, field_name)
            if not (value > 0.0) or not math.isfinite(value):
                raise TechnologyError(
                    f"{field_name} must be positive and finite, got {value!r}")
        if self.junction_leakage < 0.0:
            raise TechnologyError(
                f"junction_leakage must be >= 0, got {self.junction_leakage}")
        if not 1.0 <= self.alpha <= 2.0:
            raise TechnologyError(
                f"alpha-power exponent must lie in [1, 2], got {self.alpha}")
        if self.vdd_reference <= self.vth_reference:
            raise TechnologyError(
                "reference corner needs vdd_reference > vth_reference, got "
                f"{self.vdd_reference} <= {self.vth_reference}")
        if not 0.0 < self.vdd_min < self.vdd_max:
            raise TechnologyError(
                f"bad Vdd range [{self.vdd_min}, {self.vdd_max}]")
        if not 0.0 < self.vth_min < self.vth_max:
            raise TechnologyError(
                f"bad Vth range [{self.vth_min}, {self.vth_max}]")
        if not 0.0 < self.width_min < self.width_max:
            raise TechnologyError(
                f"bad width range [{self.width_min}, {self.width_max}]")
        if not 0.0 <= self.stack_derating <= 1.0:
            raise TechnologyError(
                f"stack_derating must lie in [0, 1], got {self.stack_derating}")
        if not 0.25 <= self.velocity_saturation_coeff <= 1.0:
            raise TechnologyError(
                "velocity_saturation_coeff must lie in [0.25, 1], got "
                f"{self.velocity_saturation_coeff}")
