"""Technology deck serialization and the built-in deck library.

The paper treats "a device technology" as an input; real flows keep decks
as versioned files. This module provides JSON round-tripping for
:class:`~repro.technology.process.Technology` plus a small library of
named decks:

* ``"generic-0.35um"`` — a relaxed 3.3 V deck (the ISCAS era),
* ``"generic-0.25um"`` — the default deck all experiments use,
* ``"generic-0.18um"`` — a constant-field-scaled forward node,

so experiments and users can pin the exact deck a result was produced
with.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Dict, Tuple

from repro.errors import TechnologyError
from repro.technology.process import Technology

#: Format marker written into every deck file.
FORMAT_KEY = "repro-technology"
FORMAT_VERSION = 1


def technology_to_dict(tech: Technology) -> Dict[str, object]:
    """Plain-dict form of a deck (JSON-compatible scalars only)."""
    payload = asdict(tech)
    payload["_format"] = FORMAT_KEY
    payload["_version"] = FORMAT_VERSION
    return payload


def technology_from_dict(payload: Dict[str, object]) -> Technology:
    """Rebuild (and validate) a deck from its dict form."""
    if payload.get("_format") != FORMAT_KEY:
        raise TechnologyError(
            "not a technology deck (missing format marker)")
    version = payload.get("_version")
    if version != FORMAT_VERSION:
        raise TechnologyError(
            f"unsupported deck format version {version!r}")
    valid = {field.name for field in fields(Technology)}
    values = {key: value for key, value in payload.items()
              if not key.startswith("_")}
    unknown = set(values) - valid
    if unknown:
        raise TechnologyError(
            f"unknown technology field(s) in deck: {sorted(unknown)}")
    missing = valid - set(values)
    if missing:
        raise TechnologyError(
            f"deck is missing field(s): {sorted(missing)}")
    return Technology(**values)  # __post_init__ validates


def save_technology(tech: Technology, path: str | Path) -> None:
    """Write a deck to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(technology_to_dict(tech), indent=2,
                               sort_keys=True) + "\n")


def load_technology(path: str | Path) -> Technology:
    """Read and validate a deck from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise TechnologyError(f"{path}: invalid JSON ({error})") from None
    if not isinstance(payload, dict):
        raise TechnologyError(f"{path}: deck must be a JSON object")
    return technology_from_dict(payload)


def builtin_decks() -> Dict[str, Technology]:
    """The named deck library."""
    default = Technology.default()
    relaxed = default.with_overrides(
        name="generic-0.35um",
        feature_size=0.35e-6,
        idsat_reference=default.idsat_reference * 1.4,
        subthreshold_i0=default.subthreshold_i0 * 1.4,
        c_gate=default.c_gate * 1.4,
        c_parasitic=default.c_parasitic * 1.4,
        c_intermediate=default.c_intermediate * 1.4,
        gate_pitch=default.gate_pitch * 1.4,
        subthreshold_slope=0.090,
    )
    scaled = Technology.scaled(0.18e-6, name="generic-0.18um")
    return {
        default.name: default,
        relaxed.name: relaxed,
        scaled.name: scaled,
    }


def deck(name: str) -> Technology:
    """Look up a built-in deck by name."""
    decks = builtin_decks()
    try:
        return decks[name]
    except KeyError:
        raise TechnologyError(
            f"unknown deck {name!r}; available: {sorted(decks)}") from None


def deck_names() -> Tuple[str, ...]:
    """Names of the built-in decks, sorted."""
    return tuple(sorted(builtin_decks()))
