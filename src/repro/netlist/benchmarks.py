"""The benchmark circuit suite used by the experiments.

The paper evaluates on ISCAS'89 circuits (s298 ... s526). Offline we embed:

* the genuine ``s27`` combinational core (small enough to reproduce from
  the published netlist), used heavily by tests, and
* a deterministic *ISCAS-like* synthetic family produced by
  :mod:`repro.netlist.generator` with the published combinational-core
  statistics (input count = PIs + flip-flops, gate count, logic depth) of
  each paper circuit. DESIGN.md §3 documents this substitution: the
  optimization algorithms only consume gate counts, types and
  fanin/fanout topology, all of which the family matches.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.errors import NetlistError
from repro.netlist.bench import parse_bench
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.netlist.network import LogicNetwork

#: The genuine ISCAS'89 s27 netlist (combinational core obtained by the
#: parser's flip-flop cutting).
S27_BENCH = """
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

#: The genuine ISCAS'85 c17 netlist (purely combinational).
C17_BENCH = """
# c17 (ISCAS'85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)

N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
"""

#: Published combinational-core statistics of the paper's ISCAS'89 suite:
#: (inputs = PIs + FFs, outputs = POs + FFs, logic gates, depth, seed).
ISCAS_LIKE_SPECS: Dict[str, Tuple[int, int, int, int, int]] = {
    "s298": (17, 20, 119, 9, 298),
    "s344": (24, 26, 160, 20, 344),
    "s349": (24, 26, 161, 20, 349),
    "s382": (24, 27, 158, 11, 382),
    "s386": (13, 13, 159, 11, 386),
    "s400": (24, 27, 162, 11, 400),
    "s444": (24, 27, 181, 11, 444),
    "s526": (24, 27, 193, 9, 526),
}

#: ISCAS'85-like combinational circuits (not in the paper's tables, but
#: the standard companion suite): (inputs, outputs, gates, depth, seed).
#: Gate counts and depths follow the published characteristics.
ISCAS85_LIKE_SPECS: Dict[str, Tuple[int, int, int, int, int]] = {
    "c432": (36, 7, 160, 17, 432),
    "c499": (41, 32, 202, 11, 499),
    "c880": (60, 26, 383, 24, 880),
    "c1355": (41, 32, 546, 24, 1355),
    "c1908": (33, 25, 880, 40, 1908),
    "c2670": (233, 140, 1193, 32, 2670),
    "c3540": (50, 22, 1669, 47, 3540),
    "c5315": (178, 123, 2307, 49, 5315),
}

#: Order in which the paper's tables list the circuits.
PAPER_CIRCUITS: Tuple[str, ...] = tuple(ISCAS_LIKE_SPECS)


@lru_cache(maxsize=1)
def s27() -> LogicNetwork:
    """The genuine s27 combinational core."""
    return parse_bench(S27_BENCH, name="s27")


@lru_cache(maxsize=1)
def c17() -> LogicNetwork:
    """The genuine c17 netlist (ISCAS'85, purely combinational)."""
    return parse_bench(C17_BENCH, name="c17")


@lru_cache(maxsize=32)
def benchmark_circuit(name: str) -> LogicNetwork:
    """Return a benchmark circuit by name.

    Available: ``'s27'`` and ``'c17'`` (genuine netlists), the paper's
    ISCAS'89-like suite (``s298`` ... ``s526``) and the ISCAS'85-like
    companion suite (``c432`` ... ``c5315``).
    """
    if name == "s27":
        return s27()
    if name == "c17":
        return c17()
    spec_entry = ISCAS_LIKE_SPECS.get(name) or ISCAS85_LIKE_SPECS.get(name)
    if spec_entry is None:
        available = ["s27", "c17", *ISCAS_LIKE_SPECS, *ISCAS85_LIKE_SPECS]
        raise NetlistError(
            f"unknown benchmark {name!r}; available: {available}")
    inputs, outputs, gates, depth, seed = spec_entry
    spec = GeneratorSpec(name=name, n_inputs=inputs, n_outputs=outputs,
                         n_gates=gates, depth=depth, seed=seed)
    return generate_network(spec)


def benchmark_names(include_s27: bool = True,
                    include_c_suite: bool = False) -> Tuple[str, ...]:
    """Benchmark circuit names, the paper's table order first."""
    names: Tuple[str, ...] = PAPER_CIRCUITS
    if include_c_suite:
        names = names + tuple(ISCAS85_LIKE_SPECS)
    if include_s27:
        return ("s27",) + names
    return names
