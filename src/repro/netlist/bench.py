"""ISCAS ``.bench`` format reader and writer.

The paper evaluates on ISCAS'89 benchmark circuits. Those are sequential;
the optimization operates on the *combinational core*, so the parser cuts
every ``DFF`` (and ``DFFSR``) element: the flip-flop's output becomes a
pseudo primary input and its data input becomes a pseudo primary output —
the standard combinational-core extraction.

Grammar accepted (case-insensitive keywords, ``#`` comments)::

    INPUT(name)
    OUTPUT(name)
    name = FUNC(arg1, arg2, ...)

Duplicate fanins (legal in ``.bench``, e.g. ``AND(a, a)``) are collapsed;
a gate left with a single fanin degrades to BUF/NOT as appropriate.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import BenchParseError, NetlistError
from repro.netlist.gates import GateType, gate_type_from_name
from repro.netlist.network import Gate, LogicNetwork

_ASSIGNMENT = re.compile(
    r"^(?P<target>[^\s=]+)\s*=\s*(?P<func>[A-Za-z]+)\s*\((?P<args>[^)]*)\)$")
_DECLARATION = re.compile(
    r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[^)]+)\)$", re.IGNORECASE)

_FLIPFLOPS = {"DFF", "DFFSR", "FF"}


def _collapse_duplicates(gate_type: GateType,
                         fanins: Sequence[str]) -> Tuple[GateType, Tuple[str, ...]]:
    """Deduplicate fanins, degrading the gate type if arity drops to 1."""
    unique: List[str] = []
    for fanin in fanins:
        if fanin not in unique:
            unique.append(fanin)
    if len(unique) == 1 and gate_type.min_fanin >= 2:
        if gate_type in (GateType.AND, GateType.OR):
            return GateType.BUF, tuple(unique)
        if gate_type in (GateType.NAND, GateType.NOR):
            return GateType.NOT, tuple(unique)
        if gate_type is GateType.XOR:
            # XOR(a, a) == 0; without constant nets we keep a buffer of the
            # (rare) single remaining signal — flagged by the validator.
            return GateType.BUF, tuple(unique)
        if gate_type is GateType.XNOR:
            return GateType.NOT, tuple(unique)
    return gate_type, tuple(unique)


def parse_bench(text: str, name: str = "bench") -> LogicNetwork:
    """Parse ``.bench`` source text into a combinational :class:`LogicNetwork`."""
    declared_inputs: List[str] = []
    declared_outputs: List[str] = []
    assignments: List[Tuple[int, str, str, List[str]]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        declaration = _DECLARATION.match(line)
        if declaration:
            net = declaration.group("name").strip()
            if not net:
                raise BenchParseError("empty net name", line_number)
            if declaration.group("kind").upper() == "INPUT":
                declared_inputs.append(net)
            else:
                declared_outputs.append(net)
            continue
        assignment = _ASSIGNMENT.match(line)
        if assignment:
            args = [arg.strip() for arg in assignment.group("args").split(",")
                    if arg.strip()]
            if not args:
                raise BenchParseError(
                    f"gate {assignment.group('target')!r} has no fanins",
                    line_number)
            assignments.append((line_number, assignment.group("target").strip(),
                                assignment.group("func").strip().upper(), args))
            continue
        raise BenchParseError(f"unrecognized syntax: {line!r}", line_number)

    gates: List[Gate] = []
    seen: Dict[str, int] = {}
    pseudo_outputs: List[str] = []

    for net in declared_inputs:
        if net in seen:
            raise BenchParseError(f"net {net!r} declared twice", seen[net])
        seen[net] = 0
        gates.append(Gate(net, GateType.INPUT))

    for line_number, target, func, args in assignments:
        if target in seen:
            raise BenchParseError(f"net {target!r} defined twice", line_number)
        seen[target] = line_number
        if func in _FLIPFLOPS:
            # Cut the register: Q becomes a pseudo primary input and D a
            # pseudo primary output of the combinational core.
            gates.append(Gate(target, GateType.INPUT))
            pseudo_outputs.append(args[0])
            continue
        try:
            gate_type = gate_type_from_name(func)
        except NetlistError as error:
            raise BenchParseError(str(error), line_number) from None
        if gate_type is GateType.INPUT:
            raise BenchParseError(
                f"INPUT used as a gate function for {target!r}", line_number)
        gate_type, fanins = _collapse_duplicates(gate_type, args)
        try:
            gates.append(Gate(target, gate_type, fanins))
        except NetlistError as error:
            raise BenchParseError(str(error), line_number) from None

    outputs: List[str] = []
    for net in declared_outputs + pseudo_outputs:
        if net not in outputs:
            outputs.append(net)
    try:
        return LogicNetwork(name, gates, outputs)
    except NetlistError as error:
        raise BenchParseError(str(error)) from None


def extract_registers(text: str) -> Tuple[Tuple[str, str], ...]:
    """All ``(Q, D)`` net pairs of the flip-flops in ``.bench`` source.

    Companion to :func:`parse_bench` (which cuts the registers into
    pseudo PI/PO); :mod:`repro.netlist.sequential` uses both to keep the
    sequential view.
    """
    registers = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        assignment = _ASSIGNMENT.match(line)
        if not assignment:
            continue
        if assignment.group("func").strip().upper() not in _FLIPFLOPS:
            continue
        args = [arg.strip() for arg in assignment.group("args").split(",")
                if arg.strip()]
        if args:
            registers.append((assignment.group("target").strip(), args[0]))
    return tuple(registers)


def parse_bench_file(path: str | Path) -> LogicNetwork:
    """Parse a ``.bench`` file; the network is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(network: LogicNetwork) -> str:
    """Serialize a combinational network back to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to an isomorphic
    network (pseudo PI/PO introduced by flip-flop cutting are emitted as
    ordinary INPUT/OUTPUT declarations).
    """
    lines: List[str] = [f"# {network.name}"]
    for net in network.inputs:
        lines.append(f"INPUT({net})")
    for net in network.outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input:
            continue
        args = ", ".join(gate.fanins)
        lines.append(f"{gate.name} = {gate.gate_type.value.upper()}({args})")
    lines.append("")
    return "\n".join(lines)
