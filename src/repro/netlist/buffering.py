"""Fanout buffering: splitting high-fanout nets with buffer trees.

High-fanout nets couple the paper's optimization unpleasantly: the driver
needs a long Procedure 1 budget (criticality weights it by its fanout),
its slow edge leaks into every receiver through the input-slope term, and
its width must cover the summed input capacitance. The standard remedy is
a buffer tree. :func:`buffer_high_fanout` rewrites a network so no net
drives more than ``max_fanout`` gate inputs, inserting BUF gates level by
level (a ``max_fanout``-ary tree for very wide nets).

The transform is purely structural and functionality-preserving (buffers
are identities); the ablation bench re-runs the joint optimization on the
buffered network to measure whether the paper's flow benefits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.network import Gate, LogicNetwork


def _split_round(gates: List[Gate], outputs: Tuple[str, ...],
                 max_fanout: int, round_index: int) -> Tuple[List[Gate], bool]:
    """One buffering pass; returns (new gates, changed?)."""
    sinks: Dict[str, List[Tuple[int, int]]] = {}
    for gate_index, gate in enumerate(gates):
        for fanin_index, fanin in enumerate(gate.fanins):
            sinks.setdefault(fanin, []).append((gate_index, fanin_index))

    changed = False
    new_gates = list(gates)
    appended: List[Gate] = []
    for driver, usage in sinks.items():
        if len(usage) <= max_fanout:
            continue
        changed = True
        # Group the sinks under ceil(n/max_fanout) buffers.
        groups = [usage[start:start + max_fanout]
                  for start in range(0, len(usage), max_fanout)]
        for group_index, group in enumerate(groups):
            buffer_name = f"{driver}__buf{round_index}_{group_index}"
            appended.append(Gate(buffer_name, GateType.BUF, (driver,)))
            for gate_index, fanin_index in group:
                gate = new_gates[gate_index]
                fanins = list(gate.fanins)
                fanins[fanin_index] = buffer_name
                new_gates[gate_index] = Gate(gate.name, gate.gate_type,
                                             tuple(fanins))
    return new_gates + appended, changed


def buffer_high_fanout(network: LogicNetwork, max_fanout: int = 6,
                       max_rounds: int = 8) -> LogicNetwork:
    """Return a functionally-identical network with bounded fanout.

    Primary outputs stay on their original nets (the module boundary load
    does not count against ``max_fanout``). Very wide nets take several
    rounds (a buffer tree); ``max_rounds`` bounds the recursion.
    """
    if max_fanout < 2:
        raise NetlistError(f"max_fanout must be >= 2, got {max_fanout}")
    gates = [network.gate(name) for name in network.topological_order()]
    changed_any = False
    for round_index in range(max_rounds):
        gates, changed = _split_round(gates, network.outputs, max_fanout,
                                      round_index)
        changed_any = changed_any or changed
        if not changed:
            break
    else:
        raise NetlistError(
            f"{network.name}: buffering did not converge in "
            f"{max_rounds} rounds")
    if not changed_any:
        return network
    return LogicNetwork(f"{network.name}-buffered", gates, network.outputs)


def max_internal_fanout(network: LogicNetwork) -> int:
    """Largest number of gate inputs driven by any single net."""
    worst = 0
    for name in network.topological_order():
        worst = max(worst, len(network.fanouts(name)))
    return worst
