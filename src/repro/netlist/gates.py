"""Gate types and their Boolean semantics.

The paper assumes "simple multi-input gates with symmetric series or
parallel pull-up and pull-down MOSFET configurations" (Appendix A.1) —
i.e. the standard static-CMOS AND/OR/NAND/NOR family, plus inverters and
buffers. XOR/XNOR appear in ISCAS netlists and are supported throughout
(activity estimation, simulation); their CMOS realization is modelled as a
two-level stack for delay/energy purposes.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

from repro.errors import NetlistError


class GateType(enum.Enum):
    """Supported combinational gate types (plus the INPUT pseudo-gate)."""

    INPUT = "input"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def is_input(self) -> bool:
        return self is GateType.INPUT

    @property
    def inverting(self) -> bool:
        """True if the gate's output is the complement of its core function."""
        return self in _INVERTING

    @property
    def min_fanin(self) -> int:
        if self is GateType.INPUT:
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return 2

    @property
    def max_fanin(self) -> int | None:
        """Upper fanin bound (None = unbounded)."""
        if self is GateType.INPUT:
            return 0
        if self in (GateType.BUF, GateType.NOT):
            return 1
        return None

    @property
    def series_stack_height(self) -> int:
        """Height of the series transistor stack for a 2-input instance.

        Used to sanity-check stack-related capacitance modelling; the
        actual per-fanin stack contribution is ``fanin - 1`` intermediate
        nodes (Appendix A.1).
        """
        if self in (GateType.NAND, GateType.AND):
            return 2
        if self in (GateType.NOR, GateType.OR):
            return 2
        if self in (GateType.XOR, GateType.XNOR):
            return 2
        return 1


_INVERTING = {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}

_BENCH_NAMES = {
    "INPUT": GateType.INPUT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}


def gate_type_from_name(name: str) -> GateType:
    """Map a ``.bench`` function name (case-insensitive) to a GateType.

    >>> gate_type_from_name('nand') is GateType.NAND
    True
    """
    try:
        return _BENCH_NAMES[name.strip().upper()]
    except KeyError:
        raise NetlistError(f"unknown gate function {name!r}") from None


def evaluate(gate_type: GateType, inputs: Sequence[bool]) -> bool:
    """Evaluate a gate on Boolean inputs.

    >>> evaluate(GateType.NAND, (True, True))
    False
    """
    arity = len(inputs)
    if arity < gate_type.min_fanin:
        raise NetlistError(
            f"{gate_type.value} needs >= {gate_type.min_fanin} inputs, "
            f"got {arity}")
    max_fanin = gate_type.max_fanin
    if max_fanin is not None and arity > max_fanin:
        raise NetlistError(
            f"{gate_type.value} takes <= {max_fanin} inputs, got {arity}")
    if gate_type is GateType.INPUT:
        raise NetlistError("INPUT pseudo-gates cannot be evaluated")
    if gate_type is GateType.BUF:
        return bool(inputs[0])
    if gate_type is GateType.NOT:
        return not inputs[0]
    if gate_type is GateType.AND:
        return all(inputs)
    if gate_type is GateType.NAND:
        return not all(inputs)
    if gate_type is GateType.OR:
        return any(inputs)
    if gate_type is GateType.NOR:
        return not any(inputs)
    parity = sum(1 for bit in inputs if bit) % 2 == 1
    if gate_type is GateType.XOR:
        return parity
    return not parity  # XNOR


def truth_table(gate_type: GateType, fanin: int) -> Tuple[bool, ...]:
    """Full truth table of a ``fanin``-input gate.

    Entry ``k`` is the output for the input assignment whose bit ``i``
    (LSB = input 0) is ``(k >> i) & 1``. Fanin is capped at 16 to keep the
    table enumerable.
    """
    if fanin > 16:
        raise NetlistError(f"truth tables limited to fanin <= 16, got {fanin}")
    rows = []
    for assignment in range(1 << fanin):
        bits = [bool((assignment >> position) & 1) for position in range(fanin)]
        rows.append(evaluate(gate_type, bits))
    return tuple(rows)
