"""Sequential circuits: registers around the combinational core.

The paper optimizes combinational cores at a cycle-time constraint; real
ISCAS'89 circuits are sequential, and the clock period must also absorb
the registers' clock-to-Q delay, setup time and the clock skew (the
paper's ``b`` factor of eq. 1 covers skew). This module keeps the
register view next to the cut core:

* :class:`SequentialCircuit` — the combinational core plus its
  ``(Q, D)`` register pairs (from :func:`repro.netlist.bench.extract_registers`),
* :class:`RegisterTiming` — clock-to-Q / setup margins,
* :func:`sequential_problem` — an :class:`~repro.optimize.problem.OptimizationProblem`
  whose effective cycle time is the register-adjusted
  ``b*T_c - t_clk2q - t_setup``, folded into the skew factor so every
  downstream algorithm (Procedure 1/2, sweeps) applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

from repro.activity.profiles import InputProfile
from repro.errors import NetlistError, TimingError
from repro.netlist.bench import extract_registers, parse_bench
from repro.netlist.network import LogicNetwork
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import PS


@dataclass(frozen=True)
class RegisterTiming:
    """Register margins charged against every cycle (seconds)."""

    clock_to_q: float = 80.0 * PS
    setup: float = 50.0 * PS

    def __post_init__(self) -> None:
        if self.clock_to_q < 0.0 or self.setup < 0.0:
            raise TimingError("register margins must be >= 0")

    @property
    def total(self) -> float:
        return self.clock_to_q + self.setup


@dataclass(frozen=True)
class SequentialCircuit:
    """A combinational core with its register boundary."""

    core: LogicNetwork
    #: ``(Q net, D net)`` pairs; Q is a pseudo PI, D a pseudo PO of core.
    registers: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        for q_net, d_net in self.registers:
            if q_net not in self.core:
                raise NetlistError(
                    f"register output {q_net!r} missing from the core")
            if d_net not in self.core:
                raise NetlistError(
                    f"register input {d_net!r} missing from the core")

    @property
    def name(self) -> str:
        return self.core.name

    @property
    def register_count(self) -> int:
        return len(self.registers)

    @property
    def true_inputs(self) -> Tuple[str, ...]:
        """Primary inputs that are *not* register outputs."""
        q_nets = {q for q, _ in self.registers}
        return tuple(name for name in self.core.inputs
                     if name not in q_nets)

    @property
    def true_outputs(self) -> Tuple[str, ...]:
        """Primary outputs that are *not* register data inputs."""
        d_nets = {d for _, d in self.registers}
        return tuple(name for name in self.core.outputs
                     if name not in d_nets)

    def usable_cycle_fraction(self, cycle_time: float,
                              timing: RegisterTiming,
                              skew_factor: float = 1.0) -> float:
        """Fraction of ``cycle_time`` left for combinational logic.

        ``b*T_c - t_clk2q - t_setup`` expressed as a fraction of ``T_c``
        — the effective skew factor handed to the optimizer.
        """
        if cycle_time <= 0.0:
            raise TimingError(f"cycle_time must be > 0, got {cycle_time}")
        if not 0.0 < skew_factor <= 1.0:
            raise TimingError(
                f"skew_factor must lie in (0, 1], got {skew_factor}")
        usable = skew_factor * cycle_time - timing.total
        if usable <= 0.0:
            raise TimingError(
                f"{self.name}: register margins ({timing.total:.3e} s) "
                f"consume the whole {cycle_time:.3e} s cycle")
        return usable / cycle_time


def parse_sequential_bench(text: str, name: str = "bench"
                           ) -> SequentialCircuit:
    """Parse ``.bench`` source keeping the register boundary."""
    core = parse_bench(text, name=name)
    return SequentialCircuit(core=core, registers=extract_registers(text))


def parse_sequential_bench_file(path: str | Path) -> SequentialCircuit:
    path = Path(path)
    return parse_sequential_bench(path.read_text(), name=path.stem)


def sequential_problem(tech: Technology, circuit: SequentialCircuit,
                       profile: InputProfile, frequency: float,
                       timing: RegisterTiming | None = None,
                       skew_factor: float = 1.0,
                       n_vth: int = 1,
                       activity_method: str = "najm"
                       ) -> OptimizationProblem:
    """Build the register-aware optimization problem for a circuit.

    The register margins are folded into the problem's skew factor, so
    Procedure 1 budgets exactly the cycle that remains after clock-to-Q
    and setup; the clock frequency reported in results stays the real
    one.
    """
    timing = timing or RegisterTiming()
    effective = circuit.usable_cycle_fraction(1.0 / frequency, timing,
                                              skew_factor=skew_factor)
    return OptimizationProblem.build(tech, circuit.core, profile,
                                     frequency=frequency,
                                     skew_factor=effective,
                                     n_vth=n_vth,
                                     activity_method=activity_method)
