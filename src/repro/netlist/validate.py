"""Structural lint of logic networks.

:class:`LogicNetwork` already enforces hard invariants at construction
(acyclicity, arity, referenced nets). This module reports *soft* issues
that are legal but usually indicate a benchmark problem — dead logic,
buffers of buffers, inputs that drive nothing — so experiments can assert
their circuits are clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.gates import GateType
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class Issue:
    """A single lint finding."""

    kind: str
    node: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.node}: {self.message}"


def lint(network: LogicNetwork) -> Tuple[Issue, ...]:
    """Return all soft issues found in ``network`` (empty = clean)."""
    issues: List[Issue] = []
    outputs = set(network.outputs)

    dead = network.dead_nodes()
    for name in dead:
        issues.append(Issue("dead-logic", name,
                            "no primary output is reachable from this node"))

    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input and not network.fanouts(name) and name not in outputs:
            issues.append(Issue("unused-input", name,
                                "primary input drives nothing"))
        if gate.gate_type is GateType.BUF and not gate.is_input:
            driver = network.gate(gate.fanins[0])
            if driver.gate_type is GateType.BUF:
                issues.append(Issue("buffer-chain", name,
                                    f"buffer of buffer {driver.name!r}"))
        if not gate.is_input and not network.fanouts(name) \
                and name not in outputs:
            issues.append(Issue("dangling-gate", name,
                                "gate output drives nothing and is not a "
                                "primary output"))
    return tuple(issues)


def assert_clean(network: LogicNetwork,
                 allow_kinds: Tuple[str, ...] = ()) -> None:
    """Raise ``AssertionError`` listing any lint issues not in ``allow_kinds``."""
    issues = [issue for issue in lint(network) if issue.kind not in allow_kinds]
    if issues:
        summary = "\n".join(str(issue) for issue in issues[:20])
        raise AssertionError(
            f"network {network.name!r} has {len(issues)} lint issue(s):\n"
            f"{summary}")
