"""The :class:`LogicNetwork` DAG.

A network is a set of named nodes; each node is either a primary input or
a logic gate with an ordered fanin list. Primary outputs name a subset of
nodes. The class maintains derived fanout lists and offers the traversals
the rest of the library is built on: topological order, levelization,
depth, transitive cones and structural validation.

Nodes are identified by their (string) names throughout the library; the
per-gate design variables (widths, delay budgets, activities) live in
plain ``{name: value}`` dictionaries so that networks stay immutable
shared state while optimizers mutate only their own views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType


@dataclass(frozen=True)
class Gate:
    """One node of a logic network."""

    name: str
    gate_type: GateType
    fanins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("gate name must be non-empty")
        arity = len(self.fanins)
        if arity < self.gate_type.min_fanin:
            raise NetlistError(
                f"gate {self.name!r} ({self.gate_type.value}) needs at least "
                f"{self.gate_type.min_fanin} fanins, got {arity}")
        max_fanin = self.gate_type.max_fanin
        if max_fanin is not None and arity > max_fanin:
            raise NetlistError(
                f"gate {self.name!r} ({self.gate_type.value}) takes at most "
                f"{max_fanin} fanins, got {arity}")
        if len(set(self.fanins)) != arity:
            raise NetlistError(
                f"gate {self.name!r} has duplicate fanins {self.fanins}")

    @property
    def fanin_count(self) -> int:
        return len(self.fanins)

    @property
    def is_input(self) -> bool:
        return self.gate_type.is_input


class LogicNetwork:
    """An immutable combinational logic network (DAG of :class:`Gate`).

    Construction validates structure eagerly: every fanin must name an
    existing node, the graph must be acyclic, and every primary output must
    exist. Use :class:`NetworkBuilder` for incremental construction.
    """

    def __init__(self, name: str, gates: Iterable[Gate],
                 outputs: Sequence[str]):
        self.name = name
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self._gates:
                raise NetlistError(f"duplicate gate name {gate.name!r}")
            self._gates[gate.name] = gate
        self._outputs: Tuple[str, ...] = tuple(outputs)
        self._check_references()
        self._fanouts: Dict[str, Tuple[str, ...]] = self._build_fanouts()
        self._topo_order: Tuple[str, ...] = self._topological_sort()
        self._levels: Dict[str, int] = self._levelize()

    # --- construction helpers ------------------------------------------------

    def _check_references(self) -> None:
        if not self._gates:
            raise NetlistError(f"network {self.name!r} has no nodes")
        for gate in self._gates.values():
            for fanin in gate.fanins:
                if fanin not in self._gates:
                    raise NetlistError(
                        f"gate {gate.name!r} references unknown net {fanin!r}")
        if not self._outputs:
            raise NetlistError(f"network {self.name!r} has no primary outputs")
        for output in self._outputs:
            if output not in self._gates:
                raise NetlistError(f"unknown primary output {output!r}")
        if len(set(self._outputs)) != len(self._outputs):
            raise NetlistError("duplicate primary outputs")
        if not any(gate.is_input for gate in self._gates.values()):
            raise NetlistError(f"network {self.name!r} has no primary inputs")

    def _build_fanouts(self) -> Dict[str, Tuple[str, ...]]:
        sinks: Dict[str, List[str]] = {name: [] for name in self._gates}
        for gate in self._gates.values():
            for fanin in gate.fanins:
                sinks[fanin].append(gate.name)
        return {name: tuple(fanout) for name, fanout in sinks.items()}

    def _topological_sort(self) -> Tuple[str, ...]:
        in_degree = {name: gate.fanin_count
                     for name, gate in self._gates.items()}
        ready = sorted(name for name, degree in in_degree.items()
                       if degree == 0)
        order: List[str] = []
        frontier = list(reversed(ready))
        while frontier:
            name = frontier.pop()
            order.append(name)
            for sink in self._fanouts[name]:
                in_degree[sink] -= 1
                if in_degree[sink] == 0:
                    frontier.append(sink)
        if len(order) != len(self._gates):
            stuck = sorted(name for name, degree in in_degree.items()
                           if degree > 0)
            raise NetlistError(
                f"network {self.name!r} contains a combinational cycle "
                f"involving {stuck[:5]}...")
        return tuple(order)

    def _levelize(self) -> Dict[str, int]:
        levels: Dict[str, int] = {}
        for name in self._topo_order:
            gate = self._gates[name]
            if gate.is_input:
                levels[name] = 0
            else:
                levels[name] = 1 + max(levels[fanin] for fanin in gate.fanins)
        return levels

    # --- basic queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __iter__(self) -> Iterator[Gate]:
        return (self._gates[name] for name in self._topo_order)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(
                f"no gate named {name!r} in network {self.name!r}") from None

    def fanouts(self, name: str) -> Tuple[str, ...]:
        """Names of the gates driven by ``name`` (empty for dead outputs)."""
        self.gate(name)
        return self._fanouts[name]

    def fanout_count(self, name: str) -> int:
        """The paper's ``f_oi``: number of gate inputs driven by this node.

        A primary output with no internal sinks still drives one load (the
        module boundary), so the count is floored at 1 for primary outputs.
        """
        count = len(self._fanouts[name])
        if count == 0 and name in set(self._outputs):
            return 1
        return count

    def level(self, name: str) -> int:
        self.gate(name)
        return self._levels[name]

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(name for name in self._topo_order
                     if self._gates[name].is_input)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self._outputs

    @property
    def logic_gates(self) -> Tuple[str, ...]:
        """Names of all non-input nodes, in topological order."""
        return tuple(name for name in self._topo_order
                     if not self._gates[name].is_input)

    @property
    def gate_count(self) -> int:
        """Number of logic gates (the paper's N; excludes primary inputs)."""
        return len(self.logic_gates)

    @property
    def depth(self) -> int:
        """Longest input→output path length in gates."""
        return max(self._levels.values())

    def topological_order(self) -> Tuple[str, ...]:
        """All node names, inputs first, each gate after its fanins."""
        return self._topo_order

    def reverse_topological_order(self) -> Tuple[str, ...]:
        return tuple(reversed(self._topo_order))

    def levels(self) -> Dict[int, Tuple[str, ...]]:
        """Nodes grouped by level (level 0 = primary inputs)."""
        grouped: Dict[int, List[str]] = {}
        for name in self._topo_order:
            grouped.setdefault(self._levels[name], []).append(name)
        return {lvl: tuple(names) for lvl, names in grouped.items()}

    # --- cones ---------------------------------------------------------------------

    def fanin_cone(self, name: str) -> Set[str]:
        """All nodes (including ``name``) feeding ``name`` transitively."""
        cone: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self.gate(current).fanins)
        return cone

    def fanout_cone(self, name: str) -> Set[str]:
        """All nodes (including ``name``) reachable from ``name``."""
        cone: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self._fanouts[current])
        return cone

    def dead_nodes(self) -> Tuple[str, ...]:
        """Nodes from which no primary output is reachable."""
        live: Set[str] = set()
        for output in self._outputs:
            live |= self.fanin_cone(output)
        return tuple(name for name in self._topo_order if name not in live)

    # --- evaluation -------------------------------------------------------------------

    def evaluate(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate every node for one input assignment.

        ``input_values`` must provide a Boolean for every primary input.
        """
        from repro.netlist import gates as gate_logic

        values: Dict[str, bool] = {}
        for name in self._topo_order:
            gate = self._gates[name]
            if gate.is_input:
                if name not in input_values:
                    raise NetlistError(f"missing value for input {name!r}")
                values[name] = bool(input_values[name])
            else:
                fanin_values = [values[fanin] for fanin in gate.fanins]
                values[name] = gate_logic.evaluate(gate.gate_type, fanin_values)
        return values

    def __repr__(self) -> str:
        return (f"LogicNetwork({self.name!r}, gates={self.gate_count}, "
                f"inputs={len(self.inputs)}, outputs={len(self.outputs)}, "
                f"depth={self.depth})")


class NetworkBuilder:
    """Incremental construction of a :class:`LogicNetwork`.

    >>> builder = NetworkBuilder('demo')
    >>> builder.add_input('a'); builder.add_input('b')
    >>> builder.add_gate('y', GateType.NAND, ['a', 'b'])
    >>> network = builder.build(outputs=['y'])
    >>> network.gate_count
    1
    """

    def __init__(self, name: str):
        self.name = name
        self._gates: List[Gate] = []
        self._names: Set[str] = set()

    def add_input(self, name: str) -> None:
        self._add(Gate(name, GateType.INPUT))

    def add_gate(self, name: str, gate_type: GateType,
                 fanins: Sequence[str]) -> None:
        self._add(Gate(name, gate_type, tuple(fanins)))

    def _add(self, gate: Gate) -> None:
        if gate.name in self._names:
            raise NetlistError(f"duplicate gate name {gate.name!r}")
        self._names.add(gate.name)
        self._gates.append(gate)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def build(self, outputs: Sequence[str]) -> LogicNetwork:
        return LogicNetwork(self.name, self._gates, outputs)
