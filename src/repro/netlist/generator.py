"""Deterministic random-logic network generator.

The paper optimizes "random logic networks" whose interconnect statistics
follow Rent's rule (§2). This generator produces combinational DAGs with:

* an exact gate count, input count and logic depth,
* a configurable fanin distribution (mostly 2-input gates, as in the
  ISCAS suites),
* a heavy-tailed fanout distribution obtained by preferential attachment,
  whose skew is controlled by ``fanout_skew`` (a Rent-exponent-like knob:
  0 = uniform fanouts, 1 = strongly preferential, matching the long-tail
  fanouts of real random logic).

Generation is fully deterministic given the spec's ``seed``; the
ISCAS-like benchmark family (:mod:`repro.netlist.benchmarks`) is built on
top of this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.network import LogicNetwork, NetworkBuilder

#: Default fanin distribution: (fanin, probability). Mirrors the ISCAS'89
#: mix: predominantly 2-input gates, some 3/4-input, a sprinkle of
#: inverters.
DEFAULT_FANIN_PROBS: Tuple[Tuple[int, float], ...] = (
    (1, 0.10),
    (2, 0.60),
    (3, 0.20),
    (4, 0.10),
)

#: Gate types by fanin: inverters for fanin 1, the static-CMOS family
#: otherwise (NAND/NOR dominate, as in technology-mapped random logic).
_SINGLE_INPUT_TYPES: Tuple[Tuple[GateType, float], ...] = (
    (GateType.NOT, 0.8),
    (GateType.BUF, 0.2),
)
_MULTI_INPUT_TYPES: Tuple[Tuple[GateType, float], ...] = (
    (GateType.NAND, 0.35),
    (GateType.NOR, 0.30),
    (GateType.AND, 0.15),
    (GateType.OR, 0.15),
    (GateType.XOR, 0.05),
)


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of a generated network."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    depth: int
    seed: int = 0
    fanin_probs: Tuple[Tuple[int, float], ...] = DEFAULT_FANIN_PROBS
    #: Preferential-attachment exponent shaping the fanout tail (>= 0).
    fanout_skew: float = 0.6

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise NetlistError(f"n_inputs must be >= 1, got {self.n_inputs}")
        if self.n_outputs < 1:
            raise NetlistError(f"n_outputs must be >= 1, got {self.n_outputs}")
        if self.depth < 1:
            raise NetlistError(f"depth must be >= 1, got {self.depth}")
        if self.n_gates < self.depth:
            raise NetlistError(
                f"n_gates ({self.n_gates}) must be >= depth ({self.depth}) "
                "so every level can hold a gate")
        if self.fanout_skew < 0.0:
            raise NetlistError(
                f"fanout_skew must be >= 0, got {self.fanout_skew}")
        total = sum(probability for _, probability in self.fanin_probs)
        if not 0.999 < total < 1.001:
            raise NetlistError(
                f"fanin probabilities must sum to 1, got {total}")


def _pick_weighted(rng: random.Random,
                   table: Sequence[Tuple[object, float]]) -> object:
    roll = rng.random()
    cumulative = 0.0
    for value, probability in table:
        cumulative += probability
        if roll < cumulative:
            return value
    return table[-1][0]


def _gates_per_level(spec: GeneratorSpec, rng: random.Random) -> List[int]:
    """Split ``n_gates`` over ``depth`` levels, each level non-empty.

    Real random logic is widest in the early-middle levels and tapers
    toward the outputs; we use a triangular profile with a random jitter.
    """
    weights = []
    for level in range(1, spec.depth + 1):
        peak = max(spec.depth * 0.35, 1.0)
        distance = abs(level - peak) / spec.depth
        weights.append(max(0.15, 1.0 - distance) * (0.8 + 0.4 * rng.random()))
    total_weight = sum(weights)
    counts = [max(1, round(spec.n_gates * weight / total_weight))
              for weight in weights]
    # Repair rounding drift while keeping every level >= 1.
    surplus = sum(counts) - spec.n_gates
    index = 0
    while surplus > 0:
        position = index % spec.depth
        if counts[position] > 1:
            counts[position] -= 1
            surplus -= 1
        index += 1
    index = 0
    while surplus < 0:
        counts[index % spec.depth] += 1
        surplus += 1
        index += 1
    return counts


def generate_network(spec: GeneratorSpec) -> LogicNetwork:
    """Generate the network described by ``spec`` (deterministic in seed)."""
    rng = random.Random(spec.seed)

    input_names = [f"pi{index}" for index in range(spec.n_inputs)]
    level_nodes: Dict[int, List[str]] = {0: list(input_names)}
    fanout_counts: Dict[str, int] = {name: 0 for name in input_names}
    counts = _gates_per_level(spec, rng)
    #: Mutable gate records (name, type, fanins, level) so post-passes can
    #: still adjust connectivity before the network is frozen.
    records: List[Tuple[str, GateType, List[str], int]] = []

    gate_index = 0
    for level in range(1, spec.depth + 1):
        level_nodes[level] = []
        candidates_below: List[str] = []
        for lower in range(level):
            candidates_below.extend(level_nodes[lower])
        previous_level = level_nodes[level - 1]
        for _ in range(counts[level - 1]):
            name = f"g{gate_index}"
            gate_index += 1
            fanin_count = int(_pick_weighted(rng, spec.fanin_probs))
            fanin_count = min(fanin_count, len(candidates_below))
            fanins: List[str] = []
            # First fanin from the immediately preceding level keeps the
            # level assignment (and hence the requested depth) exact.
            first = _preferential_choice(rng, previous_level, fanout_counts,
                                         spec.fanout_skew, exclude=fanins)
            fanins.append(first)
            while len(fanins) < fanin_count:
                choice = _preferential_choice(rng, candidates_below,
                                              fanout_counts, spec.fanout_skew,
                                              exclude=fanins)
                if choice is None:
                    break
                fanins.append(choice)
            gate_type = _type_for_fanin(rng, len(fanins))
            records.append((name, gate_type, fanins, level))
            for fanin in fanins:
                fanout_counts[fanin] += 1
            fanout_counts[name] = 0
            level_nodes[level].append(name)

    _wire_unused_inputs(rng, records, input_names, fanout_counts)

    builder = NetworkBuilder(spec.name)
    for name in input_names:
        builder.add_input(name)
    for name, gate_type, fanins, _ in records:
        builder.add_gate(name, gate_type, fanins)
    outputs = _choose_outputs(spec, rng, level_nodes, fanout_counts)
    return builder.build(outputs)


def _wire_unused_inputs(rng: random.Random,
                        records: List[Tuple[str, GateType, List[str], int]],
                        input_names: Sequence[str],
                        fanout_counts: Dict[str, int]) -> None:
    """Append each unused primary input to some multi-input gate's fanins.

    Real netlists have no floating inputs; the preferential choice mostly
    avoids them, and this post-pass guarantees it. Only multi-input gate
    types can absorb an extra fanin, and only up to fanin 6.
    """
    unused = [name for name in input_names if fanout_counts[name] == 0]
    if not unused:
        return
    absorbers = [record for record in records
                 if record[1] not in (GateType.NOT, GateType.BUF)]
    rng.shuffle(absorbers)
    for input_name in unused:
        for record in absorbers:
            if len(record[2]) < 6 and input_name not in record[2]:
                record[2].append(input_name)
                fanout_counts[input_name] += 1
                break


def _type_for_fanin(rng: random.Random, fanin_count: int) -> GateType:
    if fanin_count <= 1:
        return _pick_weighted(rng, _SINGLE_INPUT_TYPES)  # type: ignore[return-value]
    gate_type = _pick_weighted(rng, _MULTI_INPUT_TYPES)
    return gate_type  # type: ignore[return-value]


def _preferential_choice(rng: random.Random, pool: Sequence[str],
                         fanout_counts: Dict[str, int], skew: float,
                         exclude: Sequence[str]) -> str | None:
    """Pick a node with probability ∝ ``(1 + fanout)**skew``.

    Nodes with zero fanout get a strong bonus so the generator rarely
    leaves dangling logic (any remainder is promoted to a primary output).
    """
    candidates = [name for name in pool if name not in exclude]
    if not candidates:
        return None
    weights = []
    for name in candidates:
        fanout = fanout_counts[name]
        weight = (1.0 + fanout) ** skew
        if fanout == 0:
            weight *= 3.0
        weights.append(weight)
    total = sum(weights)
    roll = rng.random() * total
    cumulative = 0.0
    for name, weight in zip(candidates, weights):
        cumulative += weight
        if roll < cumulative:
            return name
    return candidates[-1]


def _choose_outputs(spec: GeneratorSpec, rng: random.Random,
                    level_nodes: Dict[int, List[str]],
                    fanout_counts: Dict[str, int]) -> List[str]:
    """Primary outputs: last level first, then any still-dangling gates."""
    outputs: List[str] = []
    last_level = list(level_nodes[spec.depth])
    rng.shuffle(last_level)
    outputs.extend(last_level)
    dangling = [name
                for level in range(1, spec.depth)
                for name in level_nodes[level]
                if fanout_counts[name] == 0]
    outputs.extend(dangling)
    if len(outputs) < spec.n_outputs:
        extras = [name
                  for level in range(spec.depth - 1, 0, -1)
                  for name in level_nodes[level]
                  if name not in outputs]
        outputs.extend(extras[:spec.n_outputs - len(outputs)])
    return outputs[:max(spec.n_outputs, len(last_level) + len(dangling))]
