"""Logic-network substrate.

The paper's input is "a random logic network of N static CMOS gates" (§2).
This subpackage provides that substrate:

* :mod:`~repro.netlist.gates` — gate types, logic evaluation, truth tables.
* :mod:`~repro.netlist.network` — the :class:`LogicNetwork` DAG with
  topological/levelized traversal, fanout queries and validation.
* :mod:`~repro.netlist.bench` — ISCAS ``.bench`` reader/writer (sequential
  elements are cut into pseudo PI/PO pairs, i.e. the combinational core
  the paper optimizes).
* :mod:`~repro.netlist.generator` — deterministic random-logic generator
  with Rent's-rule-shaped fanout statistics.
* :mod:`~repro.netlist.benchmarks` — the benchmark suite used by the
  experiments (genuine ``s27`` plus an ISCAS'89-like synthetic family with
  the published gate counts and depths).
"""

from repro.netlist.gates import GateType
from repro.netlist.network import Gate, LogicNetwork
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.netlist.benchmarks import benchmark_circuit, benchmark_names, s27

__all__ = [
    "GateType",
    "Gate",
    "LogicNetwork",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "GeneratorSpec",
    "generate_network",
    "benchmark_circuit",
    "benchmark_names",
    "s27",
]
