"""Structural statistics of logic networks.

Used by reports, by the wire-length model (which needs gate counts and
fanout statistics) and by tests validating the benchmark family against
its published statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netlist.gates import GateType
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of one network."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    depth: int
    gate_type_counts: Tuple[Tuple[str, int], ...]
    fanin_histogram: Tuple[Tuple[int, int], ...]
    fanout_histogram: Tuple[Tuple[int, int], ...]
    mean_fanin: float
    mean_fanout: float
    max_fanout: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "gates": self.n_gates,
            "depth": self.depth,
            "mean_fanin": round(self.mean_fanin, 3),
            "mean_fanout": round(self.mean_fanout, 3),
            "max_fanout": self.max_fanout,
        }


def network_stats(network: LogicNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``."""
    type_counter: Counter = Counter()
    fanin_counter: Counter = Counter()
    fanout_counter: Counter = Counter()
    total_fanin = 0
    total_fanout = 0
    max_fanout = 0

    for name in network.logic_gates:
        gate = network.gate(name)
        type_counter[gate.gate_type.value] += 1
        fanin_counter[gate.fanin_count] += 1
        total_fanin += gate.fanin_count
    for name in network.topological_order():
        fanout = network.fanout_count(name)
        fanout_counter[fanout] += 1
        total_fanout += fanout
        max_fanout = max(max_fanout, fanout)

    gate_count = max(network.gate_count, 1)
    node_count = len(network)
    return NetworkStats(
        name=network.name,
        n_inputs=len(network.inputs),
        n_outputs=len(network.outputs),
        n_gates=network.gate_count,
        depth=network.depth,
        gate_type_counts=tuple(sorted(type_counter.items())),
        fanin_histogram=tuple(sorted(fanin_counter.items())),
        fanout_histogram=tuple(sorted(fanout_counter.items())),
        mean_fanin=total_fanin / gate_count,
        mean_fanout=total_fanout / node_count,
        max_fanout=max_fanout,
    )
