"""The robust drop-in objective: statistical energy behind the seam.

:class:`RobustEvaluator` wraps the nominal
:class:`repro.engine.Evaluator` and keeps its calling convention —
``(vdd, vth) -> EngineEvaluation`` — so every search strategy
(grid/random/surrogate/hyperband), the Hooke-Jeeves descent, the
refinement passes, and the sharded round driver optimize robust metrics
without knowing they are: ``energy`` becomes the configured risk
measure (mean/p95/CVaR of the sampled energy distribution) and
``feasible`` additionally enforces the timing-yield constraint.

Per-corner estimates land in a ``stats`` sink keyed by
:func:`corner_key` so the search layer can persist the Monte-Carlo
bookkeeping (sample/quarantine counters) into checkpoints — which is
what makes a SIGKILL-resumed robust search report byte-identical
counters, not just the identical design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import math

from repro.engine.base import EngineEvaluation, Evaluator
from repro.robust.config import RobustConfig
from repro.robust.estimator import RobustEstimator

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.runtime.controller import RunController


def corner_key(vdd: float, vth: float) -> str:
    """Canonical string key of a (Vdd, Vth) corner.

    ``repr`` round-trips floats exactly, so the key built when a corner
    is evaluated matches the key built when its checkpoint record is
    replayed.
    """
    return f"{float(vdd)!r},{float(vth)!r}"


class RobustEvaluator:
    """Evaluator-compatible wrapper scoring corners by risk measure.

    The nominal evaluation (Procedure 1 budgets + sizing) runs first:
    a corner that cannot even be sized nominally is infeasible without
    spending a single Monte-Carlo sample. Feasible sizings are then
    estimated under variation at the engine-native width handle.

    ``controller`` is deliberately *not* threaded into the per-corner
    estimates on the search hot path — the search's own objective
    wrapper checks the deadline between corners, so a checkpoint never
    records a corner whose estimate was cut short (resume identity).
    """

    def __init__(self, evaluator: Evaluator, config: RobustConfig,
                 stats: Optional[Dict[str, Dict[str, object]]] = None):
        self.evaluator = evaluator
        self.problem = evaluator.problem
        self.engine = evaluator.engine
        self.config = config
        self.estimator = RobustEstimator(evaluator.problem, config,
                                         evaluator.engine)
        #: Per-corner estimate dicts, keyed by :func:`corner_key`.
        self.stats: Dict[str, Dict[str, object]] = (
            stats if stats is not None else {})

    @property
    def evaluations(self) -> int:
        return self.evaluator.evaluations

    @property
    def feasible_points(self) -> int:
        return self.evaluator.feasible_points

    def __call__(self, vdd, vth) -> EngineEvaluation:
        nominal = self.evaluator(vdd, vth)
        if not nominal.feasible:
            return nominal
        estimate = self.estimator.estimate(vdd, vth, nominal.sizing.widths)
        self.stats[corner_key(vdd, vth)] = estimate.to_dict()
        return EngineEvaluation(
            energy=estimate.objective if estimate.feasible else math.inf,
            static=nominal.static, dynamic=nominal.dynamic,
            feasible=estimate.feasible, sizing=nominal.sizing)

    def prefetch(self, corners) -> int:
        """Pre-size a round's *nominal* evaluations in one batched call.

        Delegates to the wrapped evaluator's prefetch cache (a no-op
        for engines without ``supports_batch``); the per-corner
        variation estimates still run corner by corner on consumption,
        batching their die stages internally.
        """
        return self.evaluator.prefetch(corners)

    def take_stat(self, vdd, vth) -> Optional[Dict[str, object]]:
        """Pop the estimate recorded for a corner (shard-merge hook)."""
        return self.stats.pop(corner_key(vdd, vth), None)


def robust_details(config: RobustConfig,
                   stats: Dict[str, Dict[str, object]],
                   best_point, *, engine=None) -> Dict[str, object]:
    """Aggregate a search's per-corner estimates for result details.

    ``samples_used + samples_quarantined`` per corner is exactly the
    number of samples *drawn* there (every drawn sample either survives
    or is quarantined), so the totals below reconcile with the
    ``robust.samples``/``robust.samples_quarantined`` counters of an
    uninterrupted run — including after a checkpoint resume, where the
    per-corner records are restored instead of re-sampled.
    """
    samples = sum(int(stat["samples_used"]) + int(stat["samples_quarantined"])
                  for stat in stats.values())
    quarantined = sum(int(stat["samples_quarantined"])
                      for stat in stats.values())
    culled = sum(1 for stat in stats.values() if stat["culled"])
    degraded = sum(1 for stat in stats.values() if stat["degraded"])
    best = None
    if best_point is not None:
        best = stats.get(corner_key(best_point[0], best_point[1]))
    # Execution-shape telemetry (never checkpointed per corner, so it
    # stays deterministic across resume): whether die stages ran
    # through measure_batch, and how many dies one engine invocation
    # covers — the always-executed first (cull) stage when batched,
    # one die per call otherwise.
    batched = bool(engine is not None
                   and getattr(engine, "supports_batch", False)
                   and config.samples > 1)
    samples_per_call = (min(config.cull_samples, config.samples)
                        if batched else 1)
    return {
        "config": config.resolved(),
        "corners": len(stats),
        "samples": samples,
        "samples_quarantined": quarantined,
        "corners_culled": culled,
        "corners_degraded": degraded,
        "batched": batched,
        "samples_per_call": samples_per_call,
        "estimate": dict(best) if best is not None else None,
    }
