"""Variation-aware robust optimization (ROADMAP item 2a).

The statistical-objective subsystem: a counter-seeded common-random-
number Monte-Carlo estimator (:mod:`~repro.robust.estimator`), an
Evaluator-compatible drop-in objective (:mod:`~repro.robust.objective`)
that lets every search strategy minimize mean/p95/CVaR energy under a
timing-yield feasibility constraint, and the optimization/comparison
entry points (:mod:`~repro.robust.optimize`).

``optimize_robust``/``compare_robust`` are exported lazily:
:mod:`repro.robust.optimize` imports the heuristic optimizer, which in
turn imports this package for :class:`RobustConfig` — the deferred
import breaks that cycle.
"""

from __future__ import annotations

from repro.robust.config import RISK_MEASURES, RobustConfig
from repro.robust.estimator import (
    RobustEstimate,
    RobustEstimator,
    estimate_design,
    wilson_interval,
)
from repro.robust.objective import RobustEvaluator, corner_key, robust_details

__all__ = [
    "RISK_MEASURES", "RobustConfig", "RobustEstimate", "RobustEstimator",
    "estimate_design", "wilson_interval", "RobustEvaluator", "corner_key",
    "robust_details", "optimize_robust", "compare_robust",
]

_LAZY = ("optimize_robust", "compare_robust")


def __getattr__(name: str):
    if name in _LAZY:
        from repro.robust import optimize as _optimize

        return getattr(_optimize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
