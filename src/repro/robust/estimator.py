"""Counter-seeded Monte-Carlo estimation of a design's risk measures.

One :class:`RobustEstimator` call answers: *if this exact design is
manufactured under the configured Gaussian Vth variation, what energy
distribution and timing yield does it see?* Samples are evaluated at
the fixed design (voltages and widths do not change per die) through
the :class:`repro.engine.Engine` seam.

Three properties make the estimator safe on the hot path of a search:

* **Jobs-invariance by construction.** Sample ``index`` draws its Vth
  offsets from ``random.Random((seed << 32) ^ index)`` — the PR 4
  counter-seeding pattern — in canonical ``ctx.gates`` order, so the
  estimate is a pure function of ``(design, config)``: serial runs,
  sharded rounds, and resumed runs all see byte-identical values.
  Because the offsets depend only on ``(seed, index)`` and not on the
  design, every design is scored against the *same* random dies
  (common random numbers), which makes design-to-design comparisons
  low-variance.
* **Fault quarantine.** A sample whose evaluation raises a model error
  (:class:`~repro.errors.TimingError`, infeasibility, an injected
  fault) or returns a non-finite value is quarantined and counted,
  never allowed to kill the search; the estimate is labeled degraded.
  Beyond :attr:`RobustConfig.max_failure_fraction` the estimate is
  declared unusable (infeasible), still labeled, still returned.
* **Labeled partial estimates.** Under ``partial_on_deadline=True`` a
  deadline expiring mid-estimate yields a partial, degraded-labeled
  estimate instead of a silent narrow-CI lie; on the search hot path
  the deadline propagates instead, so a checkpoint never records a
  corner whose estimate was cut short.

The two-stage schedule spends :attr:`RobustConfig.cull_samples` first;
a corner whose Wilson yield *upper* confidence bound already misses the
yield target is culled (declared infeasible) without the full budget.
The cull decision depends only on the fixed target — never on the
running best of the search — which is what keeps it jobs-invariant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    InfeasibleError,
    OptimizationError,
    TimingError,
)
from repro.obs import trace
from repro.obs.instrument import (
    ROBUST_CORNERS_CULLED,
    ROBUST_ESTIMATES,
    ROBUST_ESTIMATES_DEGRADED,
    ROBUST_SAMPLES,
    ROBUST_SAMPLES_QUARANTINED,
)
from repro.obs.metrics import current_metrics
from repro.robust.config import CONFIDENCE_Z, TAIL_FRACTION, RobustConfig

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.engine.base import Engine
    from repro.optimize.problem import OptimizationProblem
    from repro.runtime.controller import RunController

#: Perturbed thresholds are clamped here (volts), matching
#: :mod:`repro.analysis.montecarlo`.
MIN_VTH = 0.02

#: Errors that quarantine a single sample instead of killing the run.
SAMPLE_FAULTS = (TimingError, InfeasibleError, OptimizationError,
                 FaultInjectedError)


def wilson_interval(successes: int, trials: int,
                    z: float = CONFIDENCE_Z) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Chosen over the Wald interval because it keeps a nonzero width at
    the 0 %/100 % extremes — exactly where the cull stage needs an
    honest upper bound from a handful of samples.
    """
    if trials <= 0:
        return 0.0, 1.0
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (z * math.sqrt(p * (1.0 - p) / trials
                          + z2 / (4.0 * trials * trials))) / denom
    return max(0.0, center - half), min(1.0, center + half)


def _encode(value: Optional[float]):
    """JSON-portable float (non-finite values become marker strings)."""
    if value is None:
        return None
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


@dataclass(frozen=True)
class RobustEstimate:
    """Risk measures + yield of one design under Vth variation."""

    measure: str
    #: Full sample budget the schedule would spend on this corner.
    requested: int
    #: Samples that evaluated cleanly (the statistics' denominator).
    samples_used: int
    #: Samples quarantined after a model fault / non-finite value.
    samples_quarantined: int
    #: True when stage 1's yield upper bound already missed the target.
    culled: bool
    mean: Optional[float]
    p95: Optional[float]
    cvar: Optional[float]
    #: The minimized value: the chosen measure, or +inf when the corner
    #: is infeasible (yield miss, cull, or unusable statistics).
    objective: float
    timing_yield: float
    yield_low: float
    yield_high: float
    feasible: bool
    degraded: bool
    degradation: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Checkpoint/details form (plain JSON types, inf encoded)."""
        return {
            "measure": self.measure,
            "requested": self.requested,
            "samples_used": self.samples_used,
            "samples_quarantined": self.samples_quarantined,
            "culled": self.culled,
            "mean": _encode(self.mean),
            "p95": _encode(self.p95),
            "cvar": _encode(self.cvar),
            "objective": _encode(self.objective),
            "timing_yield": self.timing_yield,
            "yield_low": self.yield_low,
            "yield_high": self.yield_high,
            "feasible": self.feasible,
            "degraded": self.degraded,
            "degradation": dict(self.degradation),
        }


class RobustEstimator:
    """Monte-Carlo risk/yield estimation bound to one (problem, engine).

    ``engine`` is any :class:`repro.engine.Engine`; the estimator only
    uses :meth:`~repro.engine.Engine.measure`, so widths may be the
    engine-native handle a sizing just produced (no materialization on
    the hot path).
    """

    def __init__(self, problem: "OptimizationProblem", config: RobustConfig,
                 engine: "Engine"):
        self.problem = problem
        self.config = config
        self.engine = engine
        self.gates = problem.ctx.gates
        self.cycle_time = problem.cycle_time

    def _vth_map(self, vth, index: int) -> Dict[str, float]:
        """Sample ``index``'s perturbed per-gate thresholds (CRN draw)."""
        config = self.config
        rng = random.Random((config.seed << 32) ^ index)
        die_offset = rng.gauss(0.0, config.sigma_die)
        as_map = isinstance(vth, Mapping)
        vth_map: Dict[str, float] = {}
        for name in self.gates:
            nominal = vth[name] if as_map else vth
            offset = die_offset + rng.gauss(0.0, config.sigma_within)
            vth_map[name] = max(nominal + offset, MIN_VTH)
        return vth_map

    def _measure_stage(self, vdd, vth, widths, start: int,
                       stop: int) -> Optional[List[tuple]]:
        """Batched measurements for dies ``[start, stop)``, or None.

        One :meth:`~repro.engine.Engine.measure_batch` call evaluates
        the whole stage (e.g. all 40 dies of a full schedule) in a
        single kernel invocation — each row bit-identical to the looped
        ``engine.measure`` call, with the same CRN Vth maps in the same
        index order. A model fault inside the batched call returns
        None: the caller falls back to the per-sample loop, which
        quarantines precisely the faulty die(s) so the estimate's
        bookkeeping matches the unbatched run exactly.
        """
        rows = [self._vth_map(vth, index) for index in range(start, stop)]
        try:
            measurements = self.engine.measure_batch(
                [vdd] * len(rows), rows, [widths] * len(rows))
        except SAMPLE_FAULTS:
            return None
        return [(m.energy, m.critical_delay) for m in measurements]

    def estimate(self, vdd, vth, widths, *,
                 controller: "Optional[RunController]" = None,
                 partial_on_deadline: bool = False) -> RobustEstimate:
        """Estimate the design ``(vdd, vth, widths)`` under variation."""
        config = self.config
        cull_at = min(config.cull_samples, config.samples)
        limit = (1.0 + 1e-9) * self.cycle_time
        energies: List[float] = []
        met = 0
        quarantined = 0
        culled = False
        deadline_hit = False
        metrics = current_metrics()
        tracer = trace.current_tracer()
        # Batch the two schedule stages ([0, cull) and [cull, samples))
        # only on the deadline-free hot path: a deadline could stop the
        # looped schedule mid-stage, which a one-shot batched stage
        # cannot reproduce.
        batched = (controller is None and config.samples > 1
                   and getattr(self.engine, "supports_batch", False))
        staged: Dict[int, tuple] = {}

        with tracer.span("robust_estimate", measure=config.measure,
                         samples=config.samples) as span:
            index = 0
            while index < config.samples:
                if controller is not None:
                    try:
                        controller.check(
                            f"{self.problem.network.name} robust estimate")
                    except DeadlineExceeded:
                        # Cancellation always propagates; only a
                        # deadline may trade the tail of the schedule
                        # for a labeled partial estimate.
                        if partial_on_deadline and len(energies) >= 2:
                            deadline_hit = True
                            break
                        raise
                if batched and index not in staged:
                    stop = cull_at if index < cull_at else config.samples
                    stage = self._measure_stage(vdd, vth, widths, index, stop)
                    if stage is None:
                        batched = False
                    else:
                        for offset, pair in enumerate(stage):
                            staged[index + offset] = pair
                try:
                    if index in staged:
                        energy, delay = staged[index]
                    else:
                        measurement = self.engine.measure(
                            vdd, self._vth_map(vth, index), widths)
                        energy = measurement.energy
                        delay = measurement.critical_delay
                    if not (math.isfinite(energy) and math.isfinite(delay)):
                        raise OptimizationError(
                            f"non-finite sample: energy={energy!r}, "
                            f"delay={delay!r}")
                except SAMPLE_FAULTS:
                    quarantined += 1
                else:
                    energies.append(energy)
                    if delay <= limit:
                        met += 1
                index += 1
                if index == cull_at and cull_at < config.samples:
                    _, high = wilson_interval(met, len(energies))
                    if high < config.yield_target:
                        culled = True
                        break
            metrics.incr(ROBUST_SAMPLES, index)
            metrics.incr(ROBUST_SAMPLES_QUARANTINED, quarantined)
            if culled:
                metrics.incr(ROBUST_CORNERS_CULLED)
            metrics.incr(ROBUST_ESTIMATES)
            estimate = self._finish(index, met, quarantined, culled,
                                    deadline_hit, energies)
            if estimate.degraded:
                metrics.incr(ROBUST_ESTIMATES_DEGRADED)
            span.annotate(samples_used=estimate.samples_used,
                          quarantined=quarantined, culled=culled,
                          feasible=estimate.feasible,
                          degraded=estimate.degraded)
        return estimate

    def _finish(self, attempted: int, met: int, quarantined: int,
                culled: bool, deadline_hit: bool,
                energies: List[float]) -> RobustEstimate:
        config = self.config
        used = len(energies)
        degradation: Dict[str, object] = {}
        if quarantined:
            degradation["samples_quarantined"] = quarantined
        if deadline_hit:
            degradation["deadline"] = True
            degradation["samples_missing"] = config.samples - attempted
        over_threshold = (attempted > 0
                          and quarantined / attempted
                          > config.max_failure_fraction)
        if over_threshold:
            degradation["failure_fraction"] = quarantined / attempted
        unusable = used < 2
        if unusable:
            degradation["too_few_samples"] = used

        if unusable:
            mean = p95 = cvar = None
            timing_yield = 0.0
            yield_low, yield_high = 0.0, 1.0
        else:
            ordered = sorted(energies)
            mean = sum(ordered) / used
            tail_index = min(int(TAIL_FRACTION * used), used - 1)
            p95 = ordered[tail_index]
            tail = ordered[tail_index:]
            cvar = sum(tail) / len(tail)
            timing_yield = met / used
            yield_low, yield_high = wilson_interval(met, used)

        # The constraint is enforced on the Wilson lower bound at the
        # configured guard-band z (0 = the raw proportion): the search
        # keeps the cheapest corner that passed, so an unguarded sample
        # yield is biased upward and the boundary winner misses the
        # target under fresh-seed verification (winner's curse).
        yield_floor, _ = wilson_interval(met, used,
                                         z=config.yield_margin_z) \
            if not unusable else (0.0, 1.0)
        feasible = (not culled and not over_threshold and not unusable
                    and yield_floor >= config.yield_target)
        objective = math.inf
        if feasible:
            objective = {"mean": mean, "p95": p95, "cvar": cvar}[
                config.measure]
        return RobustEstimate(
            measure=config.measure, requested=config.samples,
            samples_used=used, samples_quarantined=quarantined,
            culled=culled, mean=mean, p95=p95, cvar=cvar,
            objective=objective, timing_yield=timing_yield,
            yield_low=yield_low, yield_high=yield_high, feasible=feasible,
            degraded=bool(degradation), degradation=degradation)


def estimate_design(problem: "OptimizationProblem", design,
                    config: RobustConfig, engine: str = "auto", *,
                    controller: "Optional[RunController]" = None,
                    partial_on_deadline: bool = True) -> RobustEstimate:
    """Standalone estimate of a :class:`~repro.optimize.problem.DesignPoint`.

    The verification entry point (fresh-seed checks, the CLI report):
    unlike the search hot path it defaults to returning labeled partial
    estimates when the deadline expires mid-estimate.
    """
    from repro.engine import make_engine

    estimator = RobustEstimator(problem, config,
                                make_engine(problem, engine))
    return estimator.estimate(design.vdd, design.vth, design.widths,
                              controller=controller,
                              partial_on_deadline=partial_on_deadline)
