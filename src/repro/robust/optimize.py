"""Robust optimization entry points and the three-way comparison.

:func:`optimize_robust` runs Procedure 2 with the statistical objective
threaded through the search (any strategy, any parallel plan), then
*verifies* the winning design with a fresh Monte-Carlo seed — the
optimizer selected on one sample set, so re-scoring on an independent
set is what makes the reported yield honest (the winner's curse check).
The verification seed is recorded in the result details, and a design
that misses its yield target under verification comes back as a labeled
:class:`~repro.runtime.fallback.DegradedResult`, never silently.

:func:`compare_robust` produces the robust-vs-nominal-vs-worst-case
report: the paper's Figure 2a worst-case corners guarantee timing at
the extreme tolerance and pay for it in energy; the nominal optimum is
cheapest but gambles on yield; the statistical optimum sits between —
all three re-scored against the *same* fresh-seed sample set (common
random numbers) so the energy and yield columns are comparable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.optimize.variation import VariationModel, optimize_with_variation
from repro.robust.config import RobustConfig
from repro.robust.estimator import RobustEstimate, estimate_design
from repro.runtime.fallback import DegradedResult, _degrade
from repro.timing.budgeting import BudgetResult


def _verification_config(config: RobustConfig, seed: Optional[int],
                         samples: Optional[int]) -> RobustConfig:
    """The fresh-seed re-scoring config: independent samples, no cull.

    Verification answers "what yield does this design really have", so
    the two-stage cull (an optimization shortcut for hopeless corners)
    is disabled, the full budget always runs, and the winner's-curse
    guard band is dropped (``yield_margin_z=0``) — verification
    measures against the target itself, it does not select.
    """
    samples = config.samples if samples is None else samples
    return dataclasses.replace(
        config, seed=config.seed + 1 if seed is None else seed,
        samples=samples, cull_samples=samples, yield_margin_z=0.0)


def optimize_robust(problem: OptimizationProblem, config: RobustConfig,
                    settings: HeuristicSettings | None = None,
                    budgets: BudgetResult | None = None,
                    resume_from=None,
                    verify_samples: Optional[int] = None,
                    verify_seed: Optional[int] = None) -> OptimizationResult:
    """Minimize the configured risk measure subject to the yield target.

    Any ``settings.robust`` already present is overridden by ``config``.
    ``verify_seed`` defaults to ``config.seed + 1`` — always disjoint
    from the counter-seeded search streams — and is recorded in
    ``details["robust"]["verification"]["seed"]``.
    """
    settings = dataclasses.replace(settings or HeuristicSettings(),
                                   robust=config)
    result = optimize_joint(problem, settings=settings, budgets=budgets,
                            resume_from=resume_from)

    verification = _verification_config(config, verify_seed, verify_samples)
    estimate = estimate_design(problem, result.design, verification,
                               engine=settings.engine)
    details = dict(result.details)
    robust = dict(details.get("robust") or {})
    robust["verification"] = {"seed": verification.seed,
                              **estimate.to_dict()}
    details["robust"] = robust

    degradation: Dict[str, object] = dict(
        result.degradation) if isinstance(result, DegradedResult) else {}
    if estimate.degraded:
        degradation.setdefault("stage", "robust_verification")
        degradation["verification_degraded"] = dict(estimate.degradation)
    if not estimate.feasible:
        degradation.setdefault("stage", "robust_verification")
        degradation["yield_miss"] = {
            "target": config.yield_target,
            "verified_yield": estimate.timing_yield,
            "yield_low": estimate.yield_low,
            "yield_high": estimate.yield_high,
        }

    rebuilt = OptimizationResult(
        problem=result.problem, design=result.design, energy=result.energy,
        timing=result.timing, evaluations=result.evaluations,
        details=details)
    if degradation:
        return _degrade(rebuilt, degradation)
    return rebuilt


def default_worst_tolerance(problem: OptimizationProblem,
                            config: RobustConfig) -> float:
    """The Figure 2a tolerance matching the statistical model's spread.

    ±3σ of the combined die + within-die deviation, expressed relative
    to the middle of the technology's threshold range, capped at the
    variation model's validity limit — so the worst-case leg guards the
    same variation the statistical legs sample.
    """
    sigma = math.sqrt(config.sigma_die ** 2 + config.sigma_within ** 2)
    vth_ref = 0.5 * (problem.tech.vth_min + problem.tech.vth_max)
    return min(0.5, 3.0 * sigma / vth_ref)


def _leg(result: OptimizationResult,
         estimate: RobustEstimate, config: RobustConfig) -> Dict[str, object]:
    return {
        "vdd": result.design.vdd,
        "vth": result.design.vth,
        "nominal_energy": result.energy.total,
        "evaluations": result.evaluations,
        "degraded": bool(result.details.get("degraded")),
        "verification": estimate.to_dict(),
        "meets_yield": bool(estimate.timing_yield >= config.yield_target),
    }


def compare_robust(problem: OptimizationProblem, config: RobustConfig,
                   settings: HeuristicSettings | None = None,
                   budgets: BudgetResult | None = None,
                   worst_tolerance: Optional[float] = None,
                   verify_samples: Optional[int] = None,
                   verify_seed: Optional[int] = None) -> Dict[str, object]:
    """Nominal vs worst-case (Figure 2a) vs robust, one report.

    All three optima are re-scored under the *same* fresh-seed sample
    set, so differences in the energy/yield columns are differences
    between the designs, not between sample draws.
    """
    settings = settings or HeuristicSettings()
    if budgets is None:
        budgets = problem.budgets()
    tolerance = (default_worst_tolerance(problem, config)
                 if worst_tolerance is None else worst_tolerance)

    nominal = optimize_joint(problem, settings=settings, budgets=budgets)
    worst = optimize_with_variation(problem, VariationModel(tolerance),
                                    settings=settings, budgets=budgets)
    robust = optimize_robust(problem, config, settings=settings,
                             budgets=budgets, verify_samples=verify_samples,
                             verify_seed=verify_seed)

    verification = _verification_config(config, verify_seed, verify_samples)
    legs = {}
    for name, result in (("nominal", nominal), ("worst_case", worst),
                         ("robust", robust)):
        estimate = estimate_design(problem, result.design, verification,
                                   engine=settings.engine)
        legs[name] = _leg(result, estimate, config)
    return {
        "circuit": problem.network.name,
        "frequency_hz": problem.frequency,
        "config": config.resolved(),
        "verify_seed": verification.seed,
        "verify_samples": verification.samples,
        "worst_tolerance": tolerance,
        "legs": legs,
    }
