"""The resolved configuration of a statistical (robust) objective.

:class:`RobustConfig` is deliberately *value-like* and JSON-native: its
:meth:`~RobustConfig.resolved` form joins the checkpoint fingerprint,
the serve result-cache key, and result details, so a nominal result can
never satisfy a robust request (and vice versa) and a resumed robust
search can never silently switch measure, sigmas, or sample budget.

Validation happens here, in ``__post_init__`` — the construction site
*is* the boundary. The CLI builds the config while parsing arguments
and the serve admission path builds it inside
:meth:`repro.serve.jobs.JobRequest.__post_init__`, so negative sigmas,
an impossible yield target, or an unknown risk measure raise a labeled
:class:`~repro.errors.OptimizationError` before any worker sees the
job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import OptimizationError

#: Supported risk measures over the per-design energy distribution.
RISK_MEASURES: Tuple[str, ...] = ("mean", "p95", "cvar")

#: Quantile behind the ``p95``/``cvar`` measures and the yield CI z.
TAIL_FRACTION = 0.95
CONFIDENCE_Z = 1.96


@dataclass(frozen=True)
class RobustConfig:
    """What "robust" means for one search: measure, constraint, budget."""

    #: Risk measure minimized over the sampled energy distribution.
    measure: str = "p95"
    #: Timing-yield feasibility constraint in (0, 1): a corner whose
    #: estimated yield falls below this is infeasible to the search.
    yield_target: float = 0.95
    #: Gaussian Vth variation (volts), as in
    #: :class:`repro.analysis.montecarlo.VariationStatistics`.
    sigma_within: float = 0.010
    sigma_die: float = 0.015
    #: Full Monte-Carlo budget per surviving corner.
    samples: int = 40
    #: Stage-1 budget of the two-stage schedule: corners whose yield
    #: upper confidence bound after this many samples already misses
    #: ``yield_target`` are culled without spending the full budget.
    #: ``cull_samples >= samples`` disables the culling stage.
    cull_samples: int = 8
    #: Seed of the counter-seeded common-random-number sample streams.
    seed: int = 0
    #: Fraction of a corner's samples that may be quarantined (model
    #: faults) before the corner's estimate is declared unusable.
    max_failure_fraction: float = 0.5
    #: z-score of the guard band on the yield constraint: feasibility
    #: demands the Wilson *lower* bound at this z clears the target,
    #: not the raw sample proportion. The search selects the cheapest
    #: corner that passed, so the raw proportion is biased upward
    #: (winner's curse) and boundary designs routinely miss the target
    #: under fresh-seed verification; one standard error of margin
    #: (z=1) counters that. 0 disables the guard band.
    yield_margin_z: float = 1.0

    def __post_init__(self) -> None:
        if self.measure not in RISK_MEASURES:
            raise OptimizationError(
                f"unknown risk measure {self.measure!r}; "
                f"choose from {', '.join(RISK_MEASURES)}")
        if not 0.0 < self.yield_target < 1.0:
            raise OptimizationError(
                f"yield_target must lie in (0, 1), got {self.yield_target}")
        if self.sigma_within < 0.0 or self.sigma_die < 0.0:
            raise OptimizationError(
                f"sigmas must be >= 0, got sigma_within={self.sigma_within}, "
                f"sigma_die={self.sigma_die}")
        if self.samples < 2:
            raise OptimizationError(
                f"samples must be >= 2, got {self.samples}")
        if self.cull_samples < 2:
            raise OptimizationError(
                f"cull_samples must be >= 2, got {self.cull_samples}")
        if not 0.0 < self.max_failure_fraction <= 1.0:
            raise OptimizationError(
                f"max_failure_fraction must lie in (0, 1], got "
                f"{self.max_failure_fraction}")
        if self.yield_margin_z < 0.0:
            raise OptimizationError(
                f"yield_margin_z must be >= 0, got {self.yield_margin_z}")

    def resolved(self) -> Dict[str, object]:
        """JSON-native identity dict (fingerprints, cache keys, details)."""
        return {
            "measure": self.measure,
            "yield_target": self.yield_target,
            "sigma_within": self.sigma_within,
            "sigma_die": self.sigma_die,
            "samples": self.samples,
            "cull_samples": min(self.cull_samples, self.samples),
            "seed": self.seed,
            "max_failure_fraction": self.max_failure_fraction,
            "yield_margin_z": self.yield_margin_z,
        }
