"""Static timing analysis.

Computes, for a concrete design point (``Vdd``, per-gate ``Vth``, widths):

* every gate's worst-case delay ``t_di`` (which, per eq. A3, depends
  recursively on the delays of its driving gates through the input-slope
  term — hence the single topological pass),
* arrival times at every node,
* the critical path and the circuit's critical delay.

Primary inputs are ideal (zero delay, zero arrival time), matching the
paper's cycle-time constraint "sum of the delays of all the gates in the
circuit's critical path".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.context import CircuitContext
from repro.errors import TimingError
from repro.obs.instrument import DELAY_MODEL_CALLS, STA_CALLS, seam
from repro.obs.metrics import current_metrics
from repro.timing.delay_model import gate_delay


def _vth_for(vth: float | Mapping[str, float], name: str) -> float:
    if isinstance(vth, Mapping):
        try:
            return vth[name]
        except KeyError:
            raise TimingError(f"no Vth supplied for gate {name!r}") from None
    return vth


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run."""

    network_name: str
    delays: Mapping[str, float]
    arrivals: Mapping[str, float]
    critical_delay: float
    critical_path: Tuple[str, ...]

    def meets(self, cycle_time: float, tolerance: float = 1e-12) -> bool:
        """Does the circuit meet ``cycle_time``?"""
        return self.critical_delay <= cycle_time * (1.0 + tolerance)

    def slack(self, cycle_time: float) -> float:
        """``cycle_time - critical_delay`` (negative = violated)."""
        return cycle_time - self.critical_delay

    def delay(self, name: str) -> float:
        return self.delays[name]

    def arrival(self, name: str) -> float:
        return self.arrivals[name]


def analyze_timing(ctx: CircuitContext, vdd: float | Mapping[str, float],
                   vth: float | Mapping[str, float],
                   widths: Mapping[str, float]) -> TimingReport:
    """Run STA at a design point and extract the critical path.

    Both ``vdd`` and ``vth`` accept a per-gate mapping (multi-Vdd /
    multi-Vth designs) or a single global value.
    """
    network = ctx.network
    delays: Dict[str, float] = {}
    arrivals: Dict[str, float] = {}

    with seam("sta", counter=STA_CALLS):
        gate_evaluations = 0
        for name in network.topological_order():
            gate = network.gate(name)
            if gate.is_input:
                delays[name] = 0.0
                arrivals[name] = 0.0
                continue
            max_fanin_delay = max(delays[fanin] for fanin in gate.fanins)
            delay = gate_delay(ctx, name, vdd, _vth_for(vth, name), widths,
                               max_fanin_delay)
            gate_evaluations += 1
            delays[name] = delay
            arrivals[name] = max(arrivals[fanin]
                                 for fanin in gate.fanins) + delay
        # One aggregate update keeps the per-gate loop free of hooks.
        current_metrics().incr(DELAY_MODEL_CALLS, gate_evaluations)

    critical_delay = max(arrivals[output] for output in network.outputs)
    critical_path = _trace_critical_path(ctx, delays, arrivals, critical_delay)
    return TimingReport(network_name=network.name, delays=delays,
                        arrivals=arrivals, critical_delay=critical_delay,
                        critical_path=critical_path)


def _trace_critical_path(ctx: CircuitContext, delays: Mapping[str, float],
                         arrivals: Mapping[str, float],
                         critical_delay: float) -> Tuple[str, ...]:
    network = ctx.network
    endpoint = max(network.outputs, key=lambda name: arrivals[name])
    if math.isinf(critical_delay):
        # Some gate cannot switch at this design point; report the endpoint
        # only — callers treat infinite delay as plain infeasibility.
        return (endpoint,)
    path = [endpoint]
    current = endpoint
    while True:
        gate = network.gate(current)
        if gate.is_input:
            break
        current = max(gate.fanins, key=lambda fanin: arrivals[fanin])
        path.append(current)
    path.reverse()
    return tuple(path)
