"""Timing: delay model, STA, critical paths and delay budgeting.

* :mod:`~repro.timing.delay_model` — the transregional worst-case gate
  delay of Appendix A.2 (switching, input-slope, distributed-RC and
  time-of-flight components).
* :mod:`~repro.timing.sta` — static timing analysis: per-gate delays,
  arrival times, critical-path extraction.
* :mod:`~repro.timing.paths` — K-most-critical path enumeration in
  decreasing *criticality* (sum of fanouts; modified Ju–Saleh, §4.2).
* :mod:`~repro.timing.budgeting` — Procedure 1: fanout-proportional
  maximum-delay assignment plus the slope-feasibility post-processing.
"""

from repro.timing.delay_model import gate_delay, slope_coefficient, DelayBreakdown
from repro.timing.sta import TimingReport, analyze_timing
from repro.timing.paths import Path, enumerate_critical_paths, most_critical_path
from repro.timing.budgeting import BudgetResult, assign_delay_budgets

__all__ = [
    "gate_delay",
    "slope_coefficient",
    "DelayBreakdown",
    "TimingReport",
    "analyze_timing",
    "Path",
    "enumerate_critical_paths",
    "most_critical_path",
    "BudgetResult",
    "assign_delay_budgets",
]
