"""Procedure 1: fanout-proportional maximum-delay assignment (§4.2).

The budget of each gate distributes the cycle time over paths in
proportion to gate fanouts, so the delay per fanout ``t_dc`` is constant
along the most critical path (eqs. 1–3 of the paper). Two equivalent
formulations are implemented:

* ``method="through"`` (default) — the closed form of the paper's own
  summary ("the maximum allowable delay of each gate is dictated by the
  most critical path intersecting that gate")::

      t_MAXi = f_oi * b*T_c / N_c(through i)

  where ``N_c(through i)`` is the criticality (sum of fanouts) of the
  most critical path passing through gate ``i`` (a two-pass DP). For any
  path ``P``, ``sum_{i in P} f_oi / N_c(through i) <= sum f_oi / N_c(P)
  = 1``, so **no path's budgets exceed** ``b*T_c`` by construction.

* ``method="paths"`` — the literal Procedure 1 iteration: enumerate paths
  in decreasing criticality (lazily, Ju–Saleh-style) and hand each path's
  unassigned gates the budget left over by its already-assigned gates.
  Later paths can find their assigned gates over budget; such gates fall
  back to the ``through`` rate, and a final rescale restores the
  invariant exactly. Retained for fidelity and ablation.

Both methods then run the paper's post-processing: the delay model's
input-slope term makes a gate inherit a fraction of its slowest driver's
delay, so driver budgets are tightened until
``slope_max * driver_budget <= slope_share * budget`` — otherwise no
device sizing could meet the driven gate's budget (the paper applies the
same fix "for a very small fraction of the gates"). A final uniform
rescale sets the longest budget-path exactly to ``b*T_c``, converting any
leftover slack into uniformly looser budgets.

The exported invariant — checked by property tests — is that after
assignment no input→output path has budgets summing over ``b*T_c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import TimingError
from repro.netlist.network import LogicNetwork
from repro.obs.instrument import (
    BUDGET_PATHS_PROCESSED,
    BUDGETING_RUNS,
    seam,
)
from repro.obs.metrics import current_metrics
from repro.timing.paths import (
    criticality_through,
    enumerate_critical_paths,
    node_weight,
)

#: Input-slope coefficient assumed by the post-processing. The model's
#: clamp is 1/2, but at the joint optima the paper's designs actually
#: reach (Vth/Vdd around 0.2-0.35) the coefficient sits near 0.15-0.25;
#: 0.25 balances feasibility against budget mangling. The width search
#: re-checks true feasibility at every candidate (Vdd, Vth) anyway.
DEFAULT_SLOPE_MAX = 0.25

#: Fraction of a gate's budget that must survive the inherited slope term.
DEFAULT_SLOPE_SHARE = 0.6


@dataclass(frozen=True)
class BudgetResult:
    """Outcome of Procedure 1."""

    network_name: str
    cycle_time: float
    skew_factor: float
    #: Maximum-delay budget per logic gate (s).
    budgets: Mapping[str, float]
    #: Assignment method used ("through" or "paths").
    method: str
    #: Paths consumed from the lazy enumerator (0 for "through").
    paths_processed: int
    #: Gates budgeted by the through-rate fallback ("paths" method only).
    fallback_gates: Tuple[str, ...]
    #: Gates whose drivers were tightened by the slope post-processing.
    slope_adjusted_gates: Tuple[str, ...]
    #: Factor applied by the final rescale.
    rescale_factor: float

    @property
    def effective_cycle_time(self) -> float:
        return self.cycle_time * self.skew_factor

    def budget(self, name: str) -> float:
        return self.budgets[name]

    def longest_budget_path(self, network: LogicNetwork) -> float:
        """Max over input→output paths of the sum of gate budgets (s)."""
        return _longest_budget_path(network, self.budgets)


def _longest_budget_path(network: LogicNetwork,
                         budgets: Mapping[str, float]) -> float:
    arrival: Dict[str, float] = {}
    worst = 0.0
    outputs = set(network.outputs)
    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input:
            arrival[name] = 0.0
        else:
            arrival[name] = budgets[name] + max(arrival[fanin]
                                                for fanin in gate.fanins)
        if name in outputs:
            worst = max(worst, arrival[name])
    return worst


def assign_delay_budgets(network: LogicNetwork, cycle_time: float,
                         skew_factor: float = 1.0,
                         method: str = "through",
                         criticality: str = "fanout",
                         max_paths: int = 20000,
                         slope_max: float = DEFAULT_SLOPE_MAX,
                         slope_share: float = DEFAULT_SLOPE_SHARE
                         ) -> BudgetResult:
    """Run Procedure 1 on ``network`` for the given cycle time.

    Parameters
    ----------
    cycle_time:
        The required clock period ``T_c = 1/f_c`` (s).
    skew_factor:
        The paper's ``b <= 1``; budgets distribute ``b * T_c``.
    method:
        ``"through"`` (closed form, default) or ``"paths"`` (literal
        path iteration); see module docstring.
    criticality:
        ``"fanout"`` (the paper's metric) or ``"unit"`` (Ju–Saleh's
        gate-count criticality, for the ablation bench).
    max_paths:
        "paths" method: cap on lazily enumerated paths before the
        through-rate fallback covers the remainder.
    slope_max, slope_share:
        Post-processing aggressiveness; drivers are tightened until
        ``slope_max * driver <= slope_share * own``. ``slope_max = 0``
        disables the post-processing.
    """
    if cycle_time <= 0.0:
        raise TimingError(f"cycle_time must be > 0, got {cycle_time}")
    if not 0.0 < skew_factor <= 1.0:
        raise TimingError(
            f"skew_factor must lie in (0, 1], got {skew_factor}")
    if not 0.0 < slope_share < 1.0:
        raise TimingError(
            f"slope_share must lie in (0, 1), got {slope_share}")
    if not 0.0 <= slope_max <= 0.5:
        raise TimingError(f"slope_max must lie in [0, 1/2], got {slope_max}")
    if method not in ("through", "paths"):
        raise TimingError(f"unknown budgeting method {method!r}")

    target = cycle_time * skew_factor
    with seam("budgeting", counter=BUDGETING_RUNS):
        if method == "through":
            budgets = _through_assignment(network, target, criticality)
            paths_processed = 0
            fallback: Tuple[str, ...] = ()
        else:
            budgets, paths_processed, fallback = _path_assignment(
                network, target, max_paths, criticality)

        slope_adjusted = _slope_post_process(network, budgets, slope_max,
                                             slope_share)
        rescale = _final_rescale(network, budgets, target)
    if paths_processed:
        current_metrics().incr(BUDGET_PATHS_PROCESSED, paths_processed)

    return BudgetResult(network_name=network.name, cycle_time=cycle_time,
                        skew_factor=skew_factor, budgets=budgets,
                        method=method, paths_processed=paths_processed,
                        fallback_gates=fallback,
                        slope_adjusted_gates=slope_adjusted,
                        rescale_factor=rescale)


def _through_assignment(network: LogicNetwork, target: float,
                        scheme: str = "fanout") -> Dict[str, float]:
    """Closed-form budgets: ``f_oi * target / criticality_through(i)``."""
    through = criticality_through(network, scheme)
    budgets: Dict[str, float] = {}
    live_rates = [target / crit for crit in through.values() if crit > 0]
    loosest_rate = max(live_rates) if live_rates else target
    for name in network.logic_gates:
        criticality = through.get(name, -1)
        weight = node_weight(network, name, scheme)
        if criticality <= 0:
            # Dead gate: constrains no path; loosest rate = cheapest
            # sizing (weight can be 0 for dangling gates, so floor it).
            budgets[name] = max(weight, 1) * loosest_rate
        else:
            budgets[name] = weight * target / criticality
    return budgets


def _path_assignment(network: LogicNetwork, target: float,
                     max_paths: int,
                     scheme: str = "fanout") -> Tuple[Dict[str, float], int,
                                                      Tuple[str, ...]]:
    """Literal Procedure 1: iterate paths in decreasing criticality."""
    through = criticality_through(network, scheme)
    budgets: Dict[str, float] = {}
    unassigned = set(network.logic_gates)
    paths_processed = 0

    for path in enumerate_critical_paths(network, scheme=scheme):
        if not unassigned or paths_processed >= max_paths:
            break
        paths_processed += 1
        gates = path.gates(network)
        fresh = [name for name in gates if name not in budgets]
        if not fresh:
            continue
        already = sum(budgets[name] for name in gates if name in budgets)
        remaining = target - already
        fanout_sum = sum(node_weight(network, name, scheme)
                         for name in fresh)
        for name in fresh:
            weight = node_weight(network, name, scheme)
            if remaining > 0.0 and fanout_sum > 0:
                budgets[name] = weight * remaining / fanout_sum
            else:
                # Earlier (more critical) paths consumed the whole budget
                # along this one; fall back to the through rate (the final
                # rescale repairs any residual overshoot).
                budgets[name] = weight * target / max(through.get(name, 1), 1)
            unassigned.discard(name)

    fallback = tuple(sorted(unassigned))
    if fallback:
        loosest = max(budgets.values(), default=target)
        for name in fallback:
            criticality = through.get(name, -1)
            if criticality <= 0:
                budgets[name] = loosest
            else:
                budgets[name] = node_weight(network, name, scheme) \
                    * target / criticality
        unassigned.clear()
    return budgets, paths_processed, fallback


def _slope_post_process(network: LogicNetwork, budgets: Dict[str, float],
                        slope_max: float,
                        slope_share: float) -> Tuple[str, ...]:
    """Tighten driver budgets so the slope term can never eat a budget.

    Processes gates in reverse topological order (outputs first) so a
    driver tightened here is itself re-checked against the updated value
    when its turn comes; reducing a driver's budget keeps every path sum
    non-increasing, so the invariant survives. Returns the gates whose
    drivers were adjusted.
    """
    if slope_max <= 0.0:
        return ()
    adjusted = []
    for name in network.reverse_topological_order():
        gate = network.gate(name)
        if gate.is_input:
            continue
        own = budgets[name]
        ceiling = slope_share * own / slope_max
        touched = False
        for fanin in gate.fanins:
            if network.gate(fanin).is_input:
                continue
            if budgets[fanin] > ceiling:
                budgets[fanin] = ceiling
                touched = True
        if touched:
            adjusted.append(name)
    return tuple(adjusted)


def _final_rescale(network: LogicNetwork, budgets: Dict[str, float],
                   target: float) -> float:
    """Scale all budgets so the longest budget path equals ``target``."""
    longest = _longest_budget_path(network, budgets)
    if longest <= 0.0 or math.isinf(longest):
        raise TimingError(
            f"degenerate budget assignment for {network.name!r}")
    factor = target / longest
    for name in budgets:
        budgets[name] *= factor
    return factor
