"""K-most-critical path enumeration (§4.2, modified Ju–Saleh [6]).

The paper defines the *criticality* of an input→output path as the sum of
the fanouts of its gates, ``N_cj = sum_i f_oij``, and processes paths in
decreasing criticality. Enumerating all paths up front is exponential, so
— like Ju and Saleh's K-most-critical-path algorithm, with the criticality
metric swapped in — paths are produced lazily, best-first:

* a DP pass computes, for every node, the best achievable
  criticality-to-go (``suffix``),
* a max-heap of partial paths ordered by ``criticality so far + suffix``
  then expands only what is needed; every popped *complete* path is
  emitted, and completed prefixes are guaranteed to come out in
  non-increasing criticality order (the classic A*-with-perfect-heuristic
  argument).

Node weights: logic gates contribute their fanout count (a primary output
with no sinks counts 1 — it drives the module boundary); primary inputs
contribute 0.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import TimingError
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class Path:
    """One input→output path."""

    nodes: Tuple[str, ...]
    criticality: int

    @property
    def source(self) -> str:
        return self.nodes[0]

    @property
    def sink(self) -> str:
        return self.nodes[-1]

    def gates(self, network: LogicNetwork) -> Tuple[str, ...]:
        """The path's logic gates (primary inputs dropped)."""
        return tuple(name for name in self.nodes
                     if not network.gate(name).is_input)

    def __len__(self) -> int:
        return len(self.nodes)


def node_weight(network: LogicNetwork, name: str,
                scheme: str = "fanout") -> int:
    """Criticality contribution of one node.

    ``scheme="fanout"`` is the paper's metric (``f_oi`` for gates, 0 for
    primary inputs); ``scheme="unit"`` is Ju–Saleh's original gate-count
    criticality (1 per gate), kept for the ablation study.
    """
    if scheme not in ("fanout", "unit"):
        raise TimingError(f"unknown criticality scheme {scheme!r}")
    if network.gate(name).is_input:
        return 0
    if scheme == "unit":
        return 1
    return network.fanout_count(name)


def criticality_suffixes(network: LogicNetwork,
                         scheme: str = "fanout") -> Dict[str, int]:
    """Best criticality-to-go from each node (including its own weight).

    ``suffix[n] = weight(n) + max(suffix[fanout])`` over fanouts that can
    reach a primary output; nodes that reach no output get ``-1`` (they
    lie on no valid path).
    """
    outputs = set(network.outputs)
    suffix: Dict[str, int] = {}
    for name in network.reverse_topological_order():
        weight = node_weight(network, name, scheme)
        fanouts = network.fanouts(name)
        best_continuation = None
        for sink in fanouts:
            if suffix.get(sink, -1) >= 0:
                continuation = suffix[sink]
                if best_continuation is None or continuation > best_continuation:
                    best_continuation = continuation
        if name in outputs:
            # A path may legally terminate here even if fanouts continue.
            terminal = 0
            if best_continuation is None or terminal > best_continuation:
                best_continuation = max(best_continuation or 0, terminal)
        if best_continuation is None:
            suffix[name] = -1
        else:
            suffix[name] = weight + best_continuation
    return suffix


def enumerate_critical_paths(network: LogicNetwork,
                             max_paths: int | None = None,
                             scheme: str = "fanout") -> Iterator[Path]:
    """Yield input→output paths in non-increasing criticality.

    ``max_paths`` bounds the number of *emitted* paths (None = unbounded;
    callers such as Procedure 1 stop consuming early instead).
    """
    if max_paths is not None and max_paths < 0:
        raise TimingError(f"max_paths must be >= 0, got {max_paths}")
    suffix = criticality_suffixes(network, scheme)
    outputs = set(network.outputs)
    counter = itertools.count()  # FIFO tie-break, keeps ordering deterministic
    # Entries: (-priority, tiebreak, accumulated, nodes, terminated). A
    # non-terminated entry's priority is an upper bound on any completion;
    # a terminated entry's priority is its exact criticality, so popping a
    # terminated entry proves nothing more critical remains.
    heap: list[tuple[int, int, int, Tuple[str, ...], bool]] = []

    for source in network.inputs:
        if suffix.get(source, -1) >= 0:
            bound = suffix[source]
            heapq.heappush(heap, (-bound, next(counter), 0, (source,), False))

    emitted = 0
    while heap:
        _, _, accumulated, nodes, terminated = heapq.heappop(heap)
        current = nodes[-1]
        if terminated:
            yield Path(nodes=nodes, criticality=accumulated)
            emitted += 1
            if max_paths is not None and emitted >= max_paths:
                return
            continue
        if current in outputs:
            heapq.heappush(heap, (-accumulated, next(counter), accumulated,
                                  nodes, True))
        for sink in network.fanouts(current):
            sink_suffix = suffix.get(sink, -1)
            if sink_suffix < 0:
                continue
            new_accumulated = accumulated + node_weight(network, sink,
                                                        scheme)
            bound = accumulated + sink_suffix
            heapq.heappush(heap, (-bound, next(counter), new_accumulated,
                                  nodes + (sink,), False))


def most_critical_path(network: LogicNetwork,
                       scheme: str = "fanout") -> Path:
    """The single most critical path (pure DP, no enumeration)."""
    for path in enumerate_critical_paths(network, max_paths=1,
                                         scheme=scheme):
        return path
    raise TimingError(
        f"network {network.name!r} has no input→output path")


def criticality_through(network: LogicNetwork,
                        scheme: str = "fanout") -> Dict[str, int]:
    """Max criticality of any path passing *through* each node.

    ``through[n] = prefix[n] + suffix[n] - weight(n)`` where ``prefix`` is
    the best criticality from any input up to and including ``n``. Used by
    Procedure 1's closed-form assignment and its fallback for gates the
    bounded enumeration never reached.
    """
    suffix = criticality_suffixes(network, scheme)
    prefix: Dict[str, int] = {}
    for name in network.topological_order():
        gate = network.gate(name)
        weight = node_weight(network, name, scheme)
        if gate.is_input:
            prefix[name] = weight
        else:
            prefix[name] = weight + max(prefix[fanin]
                                        for fanin in gate.fanins)
    through: Dict[str, int] = {}
    for name in network.topological_order():
        if suffix.get(name, -1) < 0:
            through[name] = -1
        else:
            through[name] = prefix[name] + suffix[name] \
                - node_weight(network, name, scheme)
    return through
