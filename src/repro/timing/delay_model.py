"""Transregional worst-case gate delay (Appendix A.2, eq. A3).

The delay of gate *i* has four components:

1. **Input-slope term** — a fraction of the slowest driving gate's delay,
   ``[1/2 - (1 - Vth/Vdd)/(1 + alpha)] * max_j t_dij``. The bracket grows
   as ``Vth`` approaches ``Vdd`` (slow input edges hurt more near/below
   threshold); it is clamped to ``[0, 1/2]`` — at ``Vth >= Vdd``
   (subthreshold switching) half the driver delay is inherited.
2. **Switching term** — ``k_sat * Vdd * C_L / I_eff``: the transregional
   drive discharging the full output load. The worst-case drive of an
   ``f_ii``-high series stack is the per-width current divided by the
   stack height, *minus* the subthreshold contention of the ``f_ii``
   complementary devices that are nominally off
   (``I_Diw/f_ii - f_ii * I_off`` per unit width, as in A3). If contention
   eats the whole drive the gate cannot switch: delay = ``inf``.
3. **Distributed-RC term** — ``max_j R_INTij * (C_INTij/2 + w_ij C_tij)``.
4. **Time-of-flight term** — ``max_j L_INTij / v_ij``.

All terms are evaluated from the precomputed :class:`~repro.context.CircuitContext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.context import CircuitContext
from repro.errors import TimingError
from repro.technology import mosfet
from repro.technology.process import Technology


def vdd_for(vdd: "float | Mapping[str, float]", name: str) -> float:
    """Per-gate supply lookup (scalar = one global rail, the default)."""
    if isinstance(vdd, Mapping):
        try:
            return vdd[name]
        except KeyError:
            raise TimingError(f"no Vdd supplied for gate {name!r}") from None
    return vdd


@dataclass(frozen=True)
class DelayBreakdown:
    """The four components of one gate's delay (s)."""

    slope: float
    switching: float
    wire_rc: float
    flight: float

    @property
    def total(self) -> float:
        return self.slope + self.switching + self.wire_rc + self.flight


def slope_coefficient(tech: Technology, vdd: float, vth: float) -> float:
    """The input-slope fraction ``1/2 - (1 - Vth/Vdd)/(1 + alpha)``.

    Clamped to ``[0, 1/2]``; reaches 1/2 at and below the subthreshold
    boundary (``Vth >= Vdd``).
    """
    if vdd <= 0.0:
        raise TimingError(f"vdd must be > 0, got {vdd}")
    raw = 0.5 - (1.0 - vth / vdd) / (1.0 + tech.alpha)
    return min(max(raw, 0.0), 0.5)


def stack_height_factor(tech: Technology, fanin: int) -> float:
    """Effective series-stack drive divisor, ``1 + derating * (f - 1)``."""
    if fanin < 1:
        raise TimingError(f"fanin must be >= 1, got {fanin}")
    return 1.0 + tech.stack_derating * (fanin - 1)


def effective_drive_per_width(tech: Technology, vdd: float, vth: float,
                              fanin: int) -> float:
    """Worst-case switching drive per unit width (the paper's ``I_Diw(f_ii)``).

    The single-device transregional current is derated by the series-stack
    factor and reduced by the subthreshold contention of the ``f_ii``
    nominally-off complementary devices (``... - f_ii * I_off`` in eq. A3).
    Returns a non-positive value when contention kills the drive — the
    caller maps that to an infinite delay.
    """
    drive = mosfet.drain_current_per_width(tech, vdd, vth) \
        / stack_height_factor(tech, fanin)
    from repro.technology import leakage

    contention = fanin * leakage.off_current_per_width(tech, vth, vds=vdd)
    return drive - contention


def gate_delay_breakdown(ctx: CircuitContext, name: str,
                         vdd: "float | Mapping[str, float]",
                         vth: float, widths: Mapping[str, float],
                         max_fanin_delay: float) -> DelayBreakdown:
    """Full component breakdown of one gate's worst-case delay.

    ``vdd`` may be a per-gate mapping (multi-Vdd designs); the gate's own
    rail drives both its switching current and its output swing.
    """
    info = ctx.info(name)
    tech = ctx.tech
    vdd = vdd_for(vdd, name)
    width = widths.get(name, 1.0)
    if width <= 0.0:
        raise TimingError(f"gate {name!r}: width must be > 0, got {width}")
    if max_fanin_delay < 0.0:
        raise TimingError(
            f"gate {name!r}: max_fanin_delay must be >= 0, "
            f"got {max_fanin_delay}")

    slope = slope_coefficient(tech, vdd, vth) * max_fanin_delay

    drive_per_width = effective_drive_per_width(tech, vdd, vth,
                                                info.fanin_count)
    if drive_per_width <= 0.0:
        return DelayBreakdown(slope=slope, switching=math.inf,
                              wire_rc=0.0, flight=0.0)
    load = ctx.output_load(name, widths)
    switching = (tech.velocity_saturation_coeff * vdd * load
                 / (drive_per_width * width))

    wire_rc = 0.0
    flight = 0.0
    for sink, cap_per_width, branch_cap, branch_res, branch_flight in zip(
            info.fanout_names, info.fanout_input_caps, info.branch_caps,
            info.branch_resistances, info.branch_flights):
        sink_width = ctx.BOUNDARY_WIDTH if sink == "" \
            else widths.get(sink, 1.0)
        rc = branch_res * (0.5 * branch_cap + sink_width * cap_per_width)
        wire_rc = max(wire_rc, rc)
        flight = max(flight, branch_flight)

    return DelayBreakdown(slope=slope, switching=switching,
                          wire_rc=wire_rc, flight=flight)


def gate_delay(ctx: CircuitContext, name: str,
               vdd: "float | Mapping[str, float]", vth: float,
               widths: Mapping[str, float], max_fanin_delay: float) -> float:
    """Worst-case delay of gate ``name`` (s); ``inf`` if it cannot switch."""
    return gate_delay_breakdown(ctx, name, vdd, vth, widths,
                                max_fanin_delay).total


def fixed_delay_floor(ctx: CircuitContext, name: str,
                      widths: Mapping[str, float]) -> float:
    """Width/voltage-independent lower bound of a gate's delay (s).

    The RC and time-of-flight terms do not improve with the gate's own
    width or the supply; Procedure 1's post-processing uses this floor to
    detect budgets no (Vdd, Vth, w) combination can meet.
    """
    breakdown = gate_delay_breakdown(ctx, name, vdd=3.3, vth=0.1,
                                     widths=widths, max_fanin_delay=0.0)
    return breakdown.wire_rc + breakdown.flight
