"""Logging setup for the ``repro.*`` logger hierarchy.

The library logs through standard :mod:`logging` under the ``repro``
namespace (``repro.cli``, ``repro.experiments.runner``...), using the
same event names as the tracer spans, and stays silent unless a handler
is configured — the normal contract for a library.

:func:`configure_logging` is the CLI entry point (``-v``/``-q`` flags):
it attaches one message-only handler to the ``repro`` logger writing to
*the current* ``sys.stderr`` (resolved at emit time, so pytest's capture
and stream redirection keep working). :func:`stream_handler` builds the
same style of handler for an arbitrary stream — the experiment runner
uses it to mirror run status into its output stream.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

ROOT_LOGGER_NAME = "repro"

#: Verbosity (``-q``…``-vv``) to logging level.
_LEVELS = {-1: logging.ERROR, 0: logging.WARNING,
           1: logging.INFO, 2: logging.DEBUG}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class _CurrentStderr:
    """A stream proxy resolving ``sys.stderr`` at every write.

    A plain ``StreamHandler()`` captures the ``sys.stderr`` object at
    construction; anything that later swaps the stream (pytest's
    ``capsys``, CLI redirection) would silently lose the log output.
    """

    def write(self, text: str) -> int:
        return sys.stderr.write(text)

    def flush(self) -> None:
        sys.stderr.flush()


def stream_handler(stream: TextIO,
                   level: int = logging.INFO) -> logging.Handler:
    """A message-only handler writing to ``stream``."""
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter("%(message)s"))
    return handler


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a logging level (clamped)."""
    return _LEVELS[max(min(verbosity, 2), -1)]


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Point the ``repro`` logger at stderr with the requested verbosity.

    Idempotent: repeated calls adjust the level of the one managed
    handler instead of stacking handlers.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = verbosity_level(verbosity)
    managed: Optional[logging.Handler] = None
    for handler in logger.handlers:
        if getattr(handler, "_repro_managed", False):
            managed = handler
            break
    if managed is None:
        managed = stream_handler(_CurrentStderr(), level=logging.DEBUG)
        managed._repro_managed = True  # type: ignore[attr-defined]
        logger.addHandler(managed)
    logger.setLevel(level)
    return logger
