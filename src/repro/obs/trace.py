"""Span-based tracing for the optimizer stack.

A :class:`Tracer` records a tree of named, timed spans::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("grid_search", vdd_points=15) as span:
            ...
            span.annotate(best_energy=energy)
    tracer.export_jsonl("run.trace.jsonl", metrics=registry)

Spans nest naturally (the tracer keeps a stack per tracer instance),
capture wall *and* CPU time, carry free-form attributes, and mark
themselves ``error`` when an exception propagates through them. Export
is newline-delimited strict JSON written through the crash-safe
:mod:`repro.runtime.atomicio` writer; non-finite floats in attributes
serialize as ``null`` (see :mod:`repro.obs.serialize`).

Like the metrics registry, tracers install ambiently
(:func:`use_tracer`) and default to the shared no-op
:data:`NULL_TRACER`, whose ``span()`` returns one reusable no-op
context manager — instrumentation at the hot seams costs a
:class:`~contextvars.ContextVar` lookup when tracing is off.

Determinism: both clocks are injectable. Passing a
:class:`~repro.runtime.controller.FakeClock` as ``clock`` (with
``cpu_clock`` defaulting to the same source) makes traces byte-stable,
which is how the golden-file tests pin the ``trace-report`` output.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, List, Optional

import contextlib

from repro.errors import ReproError
from repro.obs.serialize import to_jsonl

#: Marker of a metrics record inside a trace JSONL file.
METRICS_RECORD = "metrics"
#: Marker of a span record inside a trace JSONL file.
SPAN_RECORD = "span"


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "depth", "attrs",
                 "start_s", "wall_s", "cpu_s", "status")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 depth: int, attrs: Dict[str, object], start_s: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.attrs = attrs
        self.start_s = start_s
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.status = "ok"

    def annotate(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record of a finished span."""
        return {
            "type": SPAN_RECORD,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The reusable no-op span context manager of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records a tree of spans; completed spans land in :attr:`spans`.

    ``clock`` is the wall-time source (default
    :func:`time.perf_counter`); ``cpu_clock`` the CPU-time source
    (default :func:`time.process_time`, but when a custom ``clock`` is
    injected it defaults to that same clock so fake-clock traces are
    fully deterministic).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 cpu_clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        if cpu_clock is not None:
            self._cpu_clock = cpu_clock
        else:
            self._cpu_clock = clock if clock is not None \
                else time.process_time
        self._origin = self._clock()
        #: Completed spans, in completion order (children before parents).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    @property
    def depth(self) -> int:
        """Nesting depth of the currently open span stack."""
        return len(self._stack)

    @contextlib.contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span of the innermost active span."""
        parent = self._stack[-1] if self._stack else None
        record = Span(span_id=self._next_id,
                      parent_id=parent.span_id if parent is not None else None,
                      name=name, depth=len(self._stack), attrs=dict(attrs),
                      start_s=self._clock() - self._origin)
        self._next_id += 1
        self._stack.append(record)
        wall_start = self._clock()
        cpu_start = self._cpu_clock()
        try:
            yield record
        except BaseException as error:
            record.status = "error"
            record.attrs.setdefault("error", type(error).__name__)
            raise
        finally:
            record.wall_s = self._clock() - wall_start
            record.cpu_s = self._cpu_clock() - cpu_start
            self._stack.pop()
            self.spans.append(record)

    # -- export -----------------------------------------------------------

    def records(self, metrics=None) -> List[Dict[str, object]]:
        """All finished spans (+ optional metrics snapshot) as records."""
        records: List[Dict[str, object]] = [span.to_dict()
                                            for span in self.spans]
        if metrics is not None:
            records.append({"type": METRICS_RECORD, **metrics.snapshot()})
        return records

    def export_jsonl(self, path, metrics=None):
        """Atomically write the trace as JSONL; returns the path.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        appends one final ``{"type": "metrics", ...}`` record so a
        single trace file carries both spans and hot counters.
        """
        from repro.runtime.atomicio import atomic_write_text

        return atomic_write_text(path, to_jsonl(self.records(metrics)))


class NullTracer(Tracer):
    """The disabled tracer: ``span()`` hands back one shared no-op."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - no clocks, no state
        self.spans = []
        self._stack = []

    def span(self, name: str, **attrs: object):  # type: ignore[override]
        return _NULL_SPAN

    def export_jsonl(self, path, metrics=None):
        raise ReproError("cannot export the null tracer")


#: The shared disabled tracer returned when none is installed.
NULL_TRACER = NullTracer()

_TRACER: ContextVar[Tracer] = ContextVar("repro_tracer",
                                         default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The ambient tracer (:data:`NULL_TRACER` when none installed)."""
    return _TRACER.get()


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for this context."""
    tracer = tracer if tracer is not None else NULL_TRACER
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


def span(name: str, **attrs: object):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _TRACER.get().span(name, **attrs)
