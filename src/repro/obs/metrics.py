"""Process-local metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is a thread-safe bag of named instruments the
optimizer stack increments at its hot seams (``objective_evaluations``,
``sta_calls``, ``budget_repairs``...). Registries reach the instrumented
code *ambiently*: :func:`use_metrics` installs one on the current
context (mirroring :func:`repro.runtime.use_controller`) and
:func:`current_metrics` retrieves it. When none is installed, the shared
:data:`NULL_METRICS` sink is returned — every mutator on it is a bound
no-op method, so instrumentation costs one :class:`~contextvars.ContextVar`
lookup and one no-op call when observability is disabled.

Histograms keep raw observations (runs are bounded, so memory is too)
and report count/sum/min/max plus interpolated percentiles — enough to
answer "what does the p95 STA call cost" without a stats dependency.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import ReproError
from repro.obs.serialize import json_sanitize


class Histogram:
    """Raw-sample histogram with interpolated percentiles."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def percentile(self, q: float) -> float:
        """Linear-interpolated ``q``-th percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ReproError(f"percentile must lie in [0, 100], got {q}")
        if not self._values:
            raise ReproError("percentile of an empty histogram")
        ordered = sorted(self._values)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean/p50/p95/p99 of the observations."""
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self._values),
            "max": max(self._values),
            "mean": self.total / self.count,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms.

    Instruments are created on first use; all mutation goes through one
    registry lock (the contended path is a dict update — fine at the
    once-per-objective-evaluation rates the stack emits).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutation ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of all counters."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe point-in-time view of every instrument."""
        with self._lock:
            return json_sanitize({
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: histogram.summary()
                               for name, histogram
                               in self._histograms.items()},
            })

    # -- persistence ------------------------------------------------------

    def write(self, path) -> object:
        """Atomically persist :meth:`snapshot` as a JSON file at ``path``."""
        from repro.runtime.atomicio import atomic_write_json

        return atomic_write_json(path, self.snapshot())


class NullMetrics(MetricsRegistry):
    """The disabled registry: every mutator is a no-op, every read empty.

    A single shared instance (:data:`NULL_METRICS`) is the ambient
    default, making ``current_metrics().incr(...)`` safe — and nearly
    free — in uninstrumented runs.
    """

    enabled = False

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def write(self, path) -> object:
        raise ReproError("cannot persist the null metrics registry")


#: The shared disabled registry returned when none is installed.
NULL_METRICS = NullMetrics()

_METRICS: ContextVar[MetricsRegistry] = ContextVar(
    "repro_metrics_registry", default=NULL_METRICS)


def current_metrics() -> MetricsRegistry:
    """The ambient registry (:data:`NULL_METRICS` when none installed)."""
    return _METRICS.get()


@contextlib.contextmanager
def use_metrics(registry: Optional[MetricsRegistry]
                ) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient metrics sink for this context.

    ``None`` (re)installs the null sink, which is how a caller shields
    an inner scope from an outer registry.
    """
    registry = registry if registry is not None else NULL_METRICS
    token = _METRICS.set(registry)
    try:
        yield registry
    finally:
        _METRICS.reset(token)


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter on the ambient registry."""
    _METRICS.get().incr(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient registry."""
    _METRICS.get().set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the ambient registry."""
    _METRICS.get().observe(name, value)
