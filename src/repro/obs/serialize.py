"""JSON-safe serialization shared by the observability exporters.

Python's ``json`` module happily emits ``Infinity`` and ``NaN`` — tokens
that are **not** JSON and break every strict parser downstream (``jq``,
browsers, other languages). Search state is full of non-finite floats by
design (``best_energy`` is ``inf`` until the first feasible corner), so
every observability artifact (trace lines, metric snapshots, progress
events) passes through :func:`json_sanitize` first: non-finite floats
become ``null``, containers are converted recursively, and anything
exotic falls back to ``repr``. The result always survives
``json.dumps(..., allow_nan=False)``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, List, Mapping


def json_sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into strictly-valid JSON data.

    Non-finite floats (``inf``, ``-inf``, ``nan``) become ``None``;
    mappings and sequences are converted recursively; unknown objects
    are stringified with ``repr`` so a stray dataclass can never make an
    export unreadable.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, Mapping):
        return {str(key): json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_sanitize(item) for item in value]
    return repr(value)


def dumps_strict(value: Any) -> str:
    """One-line strict-JSON encoding of ``json_sanitize(value)``."""
    return json.dumps(json_sanitize(value), sort_keys=True,
                      allow_nan=False, separators=(", ", ": "))


def to_jsonl(records: Iterable[Mapping[str, Any]]) -> str:
    """Encode ``records`` as newline-delimited strict JSON."""
    lines: List[str] = [dumps_strict(record) for record in records]
    return "\n".join(lines) + ("\n" if lines else "")
