"""Observability: span tracing, metrics, profiling hooks, logging.

Dependency-free instrumentation for the optimizer stack, designed so
that *disabled is the default and costs (almost) nothing*:

* :mod:`~repro.obs.trace` — a span-based tracer.
  ``with trace.span("grid_search", vdd_points=15): ...`` records nested,
  wall/CPU-timed, attributed spans; export is strict-JSON JSONL through
  the crash-safe atomic writer. Without an installed tracer, ``span()``
  hands back one shared no-op context manager.
* :mod:`~repro.obs.metrics` — a process-local, thread-safe registry of
  counters, gauges, and histograms (``objective_evaluations``,
  ``sta_calls``, ``budget_repairs``...). The ambient default is a null
  sink whose mutators are no-ops.
* :mod:`~repro.obs.instrument` — canonical metric names plus the
  :func:`~repro.obs.instrument.seam` profiling hook wrapping the hot
  seams (delay model, STA, energy, budgeting, width search); under
  :func:`~repro.obs.instrument.use_profiling` every crossing is timed
  into a ``seam.<name>.seconds`` histogram.
* :mod:`~repro.obs.logs` — the ``repro.*`` stdlib-logging hierarchy and
  the CLI ``-v``/``-q`` plumbing.
* :mod:`~repro.obs.report` — ``repro trace-report``: top-spans-by-self-
  time and hot-counter summaries rendered from a JSONL trace.
* :mod:`~repro.obs.serialize` — strict-JSON sanitization (non-finite
  floats become ``null``) shared by every exporter.

Everything installs ambiently via context managers
(:func:`use_tracer`, :func:`use_metrics`,
:func:`~repro.obs.instrument.use_profiling`), mirroring
:func:`repro.runtime.use_controller`, and is deterministic under an
injected :class:`~repro.runtime.controller.FakeClock`.
"""

from repro.obs.instrument import (
    ANNEALING_ACCEPTS,
    ANNEALING_MOVES,
    BUDGET_PATHS_PROCESSED,
    BUDGET_REPAIRS,
    BUDGETING_RUNS,
    CHECKPOINT_FLUSHES,
    DELAY_MODEL_CALLS,
    ENERGY_EVALUATIONS,
    FALLBACK_ATTEMPTS,
    FALLBACK_STAGE,
    FEASIBLE_POINTS,
    OBJECTIVE_EVALUATIONS,
    SEAM_NAMES,
    STA_CALLS,
    WIDTH_BISECT_ITERATIONS,
    WIDTH_SIZINGS,
    profiling_enabled,
    seam,
    seam_metric,
    use_profiling,
)
from repro.obs.logs import configure_logging, get_logger, stream_handler
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    current_metrics,
    use_metrics,
)
from repro.obs.report import (
    SpanAggregate,
    TraceSummary,
    format_trace_report,
    load_trace,
    render_trace_report,
    summarize_trace,
)
from repro.obs.serialize import dumps_strict, json_sanitize, to_jsonl
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    span,
    use_tracer,
)

__all__ = [
    # trace
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "span",
    "use_tracer",
    "current_tracer",
    # metrics
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Histogram",
    "use_metrics",
    "current_metrics",
    # instrument
    "seam",
    "seam_metric",
    "use_profiling",
    "profiling_enabled",
    "SEAM_NAMES",
    "OBJECTIVE_EVALUATIONS",
    "FEASIBLE_POINTS",
    "STA_CALLS",
    "DELAY_MODEL_CALLS",
    "ENERGY_EVALUATIONS",
    "BUDGETING_RUNS",
    "BUDGET_PATHS_PROCESSED",
    "BUDGET_REPAIRS",
    "WIDTH_SIZINGS",
    "WIDTH_BISECT_ITERATIONS",
    "CHECKPOINT_FLUSHES",
    "FALLBACK_ATTEMPTS",
    "FALLBACK_STAGE",
    "ANNEALING_MOVES",
    "ANNEALING_ACCEPTS",
    # logs
    "configure_logging",
    "get_logger",
    "stream_handler",
    # report
    "load_trace",
    "summarize_trace",
    "format_trace_report",
    "render_trace_report",
    "TraceSummary",
    "SpanAggregate",
    # serialize
    "json_sanitize",
    "dumps_strict",
    "to_jsonl",
]
