"""Render a human summary from a JSONL trace (``repro trace-report``).

Aggregates span records by name — count, total/mean/max wall seconds,
total CPU seconds, and *self* time (wall minus the wall of direct
children, the number that actually answers "where did the time go") —
and lists the hottest counters from the trace's embedded metrics
record, if present.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.trace import METRICS_RECORD, SPAN_RECORD


@dataclass
class SpanAggregate:
    """Per-span-name rollup across one trace."""

    name: str
    count: int = 0
    errors: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    self_s: float = 0.0
    max_wall_s: float = 0.0

    @property
    def mean_wall_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything ``format_trace_report`` needs, precomputed."""

    spans: List[SpanAggregate]
    span_records: int
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Mapping[str, float]] = field(default_factory=dict)


def load_trace(path) -> List[Dict[str, object]]:
    """Parse a JSONL trace file into records, with clear errors."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ReproError(f"{path}: no such trace file") from None
    except OSError as exc:
        raise ReproError(f"{path}: unreadable trace ({exc})") from None
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: invalid trace line ({exc.msg}); "
                f"the file may be truncated") from None
        if not isinstance(record, dict):
            raise ReproError(
                f"{path}:{lineno}: trace records must be JSON objects, "
                f"got {type(record).__name__}")
        records.append(record)
    return records


def summarize_trace(records: Sequence[Mapping[str, object]]) -> TraceSummary:
    """Aggregate raw trace records into a :class:`TraceSummary`."""
    aggregates: Dict[str, SpanAggregate] = {}
    child_wall: Dict[object, float] = {}
    span_records = 0
    counters: Dict[str, int] = {}
    histograms: Dict[str, Mapping[str, float]] = {}
    spans = [record for record in records
             if record.get("type") == SPAN_RECORD]
    # Children complete (and are recorded) before their parents, so a
    # single pass accumulates each span's direct-child wall time before
    # the parent needs it for self time.
    for record in spans:
        span_records += 1
        name = str(record.get("name", "?"))
        wall = float(record.get("wall_s") or 0.0)
        cpu = float(record.get("cpu_s") or 0.0)
        aggregate = aggregates.get(name)
        if aggregate is None:
            aggregate = aggregates[name] = SpanAggregate(name=name)
        aggregate.count += 1
        aggregate.wall_s += wall
        aggregate.cpu_s += cpu
        aggregate.max_wall_s = max(aggregate.max_wall_s, wall)
        if record.get("status") == "error":
            aggregate.errors += 1
        aggregate.self_s += wall - child_wall.pop(record.get("span_id"), 0.0)
        parent = record.get("parent_id")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + wall
    for record in records:
        if record.get("type") == METRICS_RECORD:
            raw_counters = record.get("counters")
            if isinstance(raw_counters, dict):
                counters.update({str(key): int(value)
                                 for key, value in raw_counters.items()})
            raw_histograms = record.get("histograms")
            if isinstance(raw_histograms, dict):
                histograms.update(raw_histograms)
    ordered = sorted(aggregates.values(),
                     key=lambda agg: (-agg.self_s, -agg.wall_s, agg.name))
    return TraceSummary(spans=ordered, span_records=span_records,
                        counters=counters, histograms=histograms)


def format_trace_report(summary: TraceSummary, top: int = 10,
                        title: Optional[str] = None) -> str:
    """Aligned top-span + hot-counter report of one trace."""
    from repro.analysis.report import format_table

    blocks: List[str] = []
    rows = [[agg.name, agg.count,
             f"{agg.self_s:.6f}", f"{agg.wall_s:.6f}",
             f"{agg.mean_wall_s:.6f}", f"{agg.max_wall_s:.6f}",
             f"{agg.cpu_s:.6f}",
             str(agg.errors) if agg.errors else "-"]
            for agg in summary.spans[:top]]
    blocks.append(format_table(
        headers=["span", "count", "self (s)", "total (s)", "mean (s)",
                 "max (s)", "cpu (s)", "errors"],
        rows=rows,
        title=title or f"top spans by self time "
                       f"({summary.span_records} span records)"))
    if summary.counters:
        hot: List[Tuple[str, int]] = sorted(summary.counters.items(),
                                            key=lambda item: (-item[1],
                                                              item[0]))
        blocks.append(format_table(
            headers=["counter", "value"],
            rows=[[name, value] for name, value in hot[:top]],
            title="hot counters"))
    if summary.histograms:
        rows = []
        for name in sorted(summary.histograms):
            stats = summary.histograms[name]
            if not stats.get("count"):
                continue
            rows.append([name, stats["count"],
                         f"{stats.get('mean', 0.0):.6f}",
                         f"{stats.get('p95', 0.0):.6f}",
                         f"{stats.get('max', 0.0):.6f}"])
        if rows:
            blocks.append(format_table(
                headers=["histogram", "count", "mean", "p95", "max"],
                rows=rows, title="seam timings (profiling)"))
    return "\n\n".join(blocks)


def render_trace_report(path, top: int = 10) -> str:
    """Load, summarize, and format the trace at ``path``."""
    summary = summarize_trace(load_trace(path))
    return format_trace_report(summary, top=top,
                               title=f"top spans by self time — {path} "
                                     f"({summary.span_records} span records)")
