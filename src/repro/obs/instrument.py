"""Profiling hooks and canonical metric names for the hot seams.

The optimizer stack is instrumented at five seams — delay model, STA,
energy/leakage evaluation, Procedure 1 budgeting, and the Procedure 2
inner width search. Each seam increments its canonical call counter on
the ambient :mod:`~repro.obs.metrics` registry (a no-op without one);
under :func:`use_profiling` it additionally times every call into a
``seam.<name>.seconds`` histogram, which is what feeds the
"where did the 40s go" half of ``repro trace-report``.

The canonical counter names below are the shared vocabulary of the
tracer, the metrics registry, the ``repro.*`` loggers, and the
benchmark JSON artifacts — grep for a constant, not a string.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.obs.metrics import current_metrics

# -- canonical metric names -----------------------------------------------

#: Objective evaluations (one candidate (Vdd, Vth) corner, any optimizer).
OBJECTIVE_EVALUATIONS = "objective_evaluations"
#: Corners whose width sizing met every budget.
FEASIBLE_POINTS = "feasible_points"
#: Full STA passes (:func:`repro.timing.sta.analyze_timing`).
STA_CALLS = "sta_calls"
#: Per-gate delay-model evaluations (aggregated, not per-gate counted).
DELAY_MODEL_CALLS = "delay_model_calls"
#: Network energy evaluations (:func:`repro.power.energy.total_energy`).
ENERGY_EVALUATIONS = "energy_evaluations"
#: Procedure 1 budgeting runs.
BUDGETING_RUNS = "budgeting_runs"
#: Paths consumed by the literal Procedure 1 path iteration.
BUDGET_PATHS_PROCESSED = "budget_paths_processed"
#: Gates repaired by the width-search budget post-processing.
BUDGET_REPAIRS = "budget_repairs"
#: Width-sizing passes (Procedure 2's inner loop).
WIDTH_SIZINGS = "width_sizings"
#: Delay evaluations spent inside the paper's per-gate width bisection.
WIDTH_BISECT_ITERATIONS = "width_bisect_iterations"
#: Checkpoint files written (batched saves + final flushes).
CHECKPOINT_FLUSHES = "checkpoint_flushes"
#: Fallback-chain stages attempted.
FALLBACK_ATTEMPTS = "fallback_attempts"
#: Gauge: index of the fallback stage currently running / last run.
FALLBACK_STAGE = "fallback_stage"
#: Annealing moves proposed / accepted.
ANNEALING_MOVES = "annealing_moves"
ANNEALING_ACCEPTS = "annealing_accepts"
#: Delta-evaluation moves applied by the incremental engine.
INCREMENTAL_MOVES = "engine.incremental.moves"
#: Gates re-evaluated inside incremental arrival cones (aggregate).
INCREMENTAL_CONE_GATES = "engine.incremental.cone_gates"
#: Full vectorized refreshes the incremental engine fell back to
#: (``begin`` and voltage moves; width moves never trigger one).
INCREMENTAL_FULL_REFRESHES = "engine.incremental.full_refreshes"
#: Batched (multi-design) engine invocations.
BATCH_CALLS = "engine.batch.calls"
#: Histogram: design rows per batched invocation (the batch-size
#: distribution; observed, not incremented).
BATCH_ROWS = "engine.batch.rows"
#: Batched API called on an engine without ``supports_batch`` — the
#: request was served by the row-at-a-time fallback loop.
BATCH_FALLBACK = "engine.batch.fallback"
#: Grid cells skipped by the admissible lower-bound pre-pass.
PRUNED_CELLS = "search.pruned_cells"
#: Bisection brackets seeded from a neighbor cell's solved widths.
WARM_STARTS = "search.warm_starts"
#: Warm-start sizing requested but skipped (parallel search active —
#: warm starts chain evaluations and cannot cross a shard boundary).
WARM_START_SKIPPED = "search.warm_start_skipped"
#: Sharded tasks completed by the supervised pool (any mode).
POOL_TASKS_COMPLETED = "pool.tasks.completed"
#: Task attempts rescheduled after a failure/crash/timeout.
POOL_TASKS_RETRIED = "pool.tasks.retried"
#: Poison tasks quarantined after exhausting their retries.
POOL_TASKS_QUARANTINED = "pool.tasks.quarantined"
#: Worker processes replaced after a crash, hang, or task timeout.
POOL_WORKER_RESPAWNS = "pool.workers.respawned"
#: Worker processes spawned at pool start.
POOL_WORKERS_STARTED = "pool.workers.started"
#: Monte-Carlo samples drawn by the robust estimator (any corner).
ROBUST_SAMPLES = "robust.samples"
#: Robust-estimator samples quarantined after a model fault.
ROBUST_SAMPLES_QUARANTINED = "robust.samples_quarantined"
#: Corners culled by the two-stage schedule (stage-1 yield UCB missed
#: the target before the full sample budget was spent).
ROBUST_CORNERS_CULLED = "robust.corners_culled"
#: Completed robust estimates (one per evaluated corner).
ROBUST_ESTIMATES = "robust.estimates"
#: Robust estimates returned with a degradation label (quarantined
#: samples, deadline-partial schedules, or exceeded failure fraction).
ROBUST_ESTIMATES_DEGRADED = "robust.estimates_degraded"
#: Monte-Carlo variation samples quarantined after an STA/energy fault
#: (:func:`repro.analysis.montecarlo.monte_carlo_variation`).
MC_SAMPLES_FAILED = "mc.samples_failed"
#: Jobs accepted by the optimization service (admission passed).
SERVE_JOBS_SUBMITTED = "serve.jobs.submitted"
#: Submissions rejected by admission control (queue at capacity).
SERVE_JOBS_REJECTED = "serve.jobs.rejected"
#: Jobs re-enqueued from the journal after a daemon restart.
SERVE_JOBS_RECOVERED = "serve.jobs.recovered"
#: Result-cache lookups served without touching the pool.
SERVE_CACHE_HITS = "serve.cache.hits"
#: Result-cache lookups that required computation.
SERVE_CACHE_MISSES = "serve.cache.misses"
#: Cache entries evicted by the LRU size cap.
SERVE_CACHE_EVICTIONS = "serve.cache.evictions"
#: Cache entries quarantined after failing their integrity digest.
SERVE_CACHE_CORRUPT = "serve.cache.corrupt"
#: Torn journal tails truncated during recovery.
SERVE_JOURNAL_TRUNCATED = "serve.journal.truncated"
#: Corrupt/mismatched checkpoints discarded before a fresh solve.
SERVE_CHECKPOINT_DISCARDED = "serve.checkpoint.discarded"


def serve_state_metric(state: str) -> str:
    """Counter: jobs that entered lifecycle state ``state``.

    One counter per :data:`repro.serve.jobs.JOB_STATES` entry (e.g.
    ``serve.jobs.done``); incremented by the service on every journaled
    transition, so a metrics snapshot is a live census of the queue.
    """
    return f"serve.jobs.{state.lower()}"

def search_metric(strategy: str, event: str) -> str:
    """Counter: search-strategy lifecycle events.

    One counter per (strategy, event) pair — e.g.
    ``search.random.proposals`` — incremented by the strategy driver
    (``proposals``/``observations``) and by the strategies themselves
    (``early_stops``: surrogate convergence, hyperband arm culls), so a
    metrics snapshot shows how hard each sampler worked and how often
    adaptive termination fired.
    """
    return f"search.{strategy}.{event}"


#: Seam names with profiling hooks (see :func:`seam`).
SEAM_NAMES = ("sta", "energy", "width_search", "budgeting", "delay_model")


def seam_metric(name: str) -> str:
    """Histogram name recording per-call seconds of seam ``name``."""
    return f"seam.{name}.seconds"


def engine_evaluations_metric(engine_name: str) -> str:
    """Counter: objective evaluations performed by engine ``engine_name``.

    Every optimizer routes its objective through
    :class:`repro.engine.Evaluator`, which increments both the global
    :data:`OBJECTIVE_EVALUATIONS` and this engine-labeled counter — so a
    metrics snapshot shows exactly which engine did the work.
    """
    return f"engine.{engine_name}.evaluations"


# -- profiling switch -----------------------------------------------------

#: The profiling clock for the current context; ``None`` = disabled.
_PROFILE_CLOCK: ContextVar[Optional[Callable[[], float]]] = ContextVar(
    "repro_profile_clock", default=None)


@contextlib.contextmanager
def use_profiling(clock: Optional[Callable[[], float]] = None
                  ) -> Iterator[Callable[[], float]]:
    """Enable per-seam duration histograms for this context.

    ``clock`` defaults to :func:`time.perf_counter`; inject a
    :class:`~repro.runtime.controller.FakeClock` for deterministic
    tests.
    """
    clock = clock or time.perf_counter
    token = _PROFILE_CLOCK.set(clock)
    try:
        yield clock
    finally:
        _PROFILE_CLOCK.reset(token)


def profiling_enabled() -> bool:
    """True inside a :func:`use_profiling` scope."""
    return _PROFILE_CLOCK.get() is not None


@contextlib.contextmanager
def seam(name: str, counter: Optional[str] = None,
         calls: int = 1) -> Iterator[None]:
    """Count (and, under profiling, time) one crossing of a hot seam.

    ``counter`` is the canonical counter incremented per crossing
    (e.g. :data:`STA_CALLS`); ``calls`` lets an aggregate seam book N
    underlying model calls with a single counter update — the per-gate
    delay model is counted this way so the innermost loop stays
    untouched.
    """
    metrics = current_metrics()
    if counter is not None:
        metrics.incr(counter, calls)
    clock = _PROFILE_CLOCK.get()
    if clock is None or not metrics.enabled:
        yield
        return
    start = clock()
    try:
        yield
    finally:
        metrics.observe(seam_metric(name), clock() - start)
