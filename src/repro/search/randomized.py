"""Uniform random sampling over the (Vdd, Vth) plane.

The cheapest adaptive baseline: ``budget`` points drawn uniformly from
the technology ranges. Each proposal's coordinates come from its own
counter-seeded RNG (:func:`repro.search.base.proposal_rng`), so the
point drawn as proposal ``i`` depends only on ``(seed, i)`` — sharded,
serial, and resumed runs all draw the identical sequence, and the
parity harness's byte-identity and resume-identity checks hold with no
strategy-side effort.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.search.base import Candidate, SearchStrategy, proposal_rng

DEFAULT_BUDGET = 48
DEFAULT_BATCH = 16


class RandomStrategy(SearchStrategy):
    """Counter-seeded uniform sampling (PR 4's Monte-Carlo idiom)."""

    name = "random"

    def __init__(self, vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float],
                 budget: int = DEFAULT_BUDGET, seed: int = 0,
                 batch: int = DEFAULT_BATCH):
        self._check_budget(budget, 1, self.name)
        self.vdd_range = vdd_range
        self.vth_range = vth_range
        self.budget = budget
        self.seed = seed
        self.proposal_batch = min(batch, budget)
        self._proposed = 0
        self._observed = 0

    def propose(self, batch: int) -> List[Candidate]:
        count = min(batch, self.budget - self._proposed)
        candidates = []
        for index in range(self._proposed, self._proposed + count):
            rng = proposal_rng(self.seed, index)
            candidates.append(Candidate(vdd=rng.uniform(*self.vdd_range),
                                        vth=rng.uniform(*self.vth_range),
                                        tag=index))
        self._proposed += count
        return candidates

    def observe(self, candidate: Candidate, energy: float,
                feasible: bool) -> None:
        self._observed += 1

    def done(self) -> bool:
        return self._proposed >= self.budget \
            and self._observed >= self._proposed

    def state(self) -> Dict[str, object]:
        return {"proposed": self._proposed, "observed": self._observed}

    def restore(self, state: Dict[str, object]) -> None:
        self._proposed = int(state.get("proposed", 0))
        self._observed = int(state.get("observed", 0))

    def config(self) -> Dict[str, object]:
        return {"name": self.name, "budget": self.budget, "seed": self.seed,
                "batch": self.proposal_batch}
