"""Model-based sampling: a quadratic response surface over the plane.

The total-energy landscape over (Vdd, Vth) is smooth and near-convex
inside the feasible region (eqs. A1 + A2 are low-order polynomials and
exponentials of the voltages), so a six-coefficient quadratic fitted to
the observed corners is an effective cheap surrogate. The strategy:

1. **Init round** — a deterministic coarse sub-grid plus the
   ``prior_cells`` grid cells with the *lowest* PR 5 closed-form
   admissible lower bounds (:func:`repro.search.grid.grid_lower_bounds`).
   The bounds are exact model knowledge that costs no objective
   evaluations, and the true optimum tends to sit where the bound is
   low, so the model starts with samples straddling the interesting
   basin.
2. **Model rounds** — fit the quadratic by least squares (infeasible
   corners enter at a penalty above the worst feasible energy, which
   pushes the surface up outside the feasible region), then score a
   dense candidate lattice with an expected-improvement-style
   acquisition: predicted improvement over the incumbent plus an
   exploration bonus proportional to the distance from the nearest
   observed corner. The top ``batch`` cells become the next round.
3. **Early stop** — when no lattice cell scores above a small fraction
   of the incumbent energy, the model says the basin is exhausted; the
   search ends before the budget (counted on
   ``search.surrogate.early_stops``).

Everything is deterministic given (config, observation history): the
fit is a fixed least-squares solve, the lattice and tie-breaks are
fixed, and the only RNG (the cold-start fallback while fewer than six
feasible corners exist) is counter-seeded — so serial, sharded, and
resumed runs propose identical sequences.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.obs.instrument import search_metric
from repro.obs.metrics import current_metrics
from repro.search.base import (Candidate, SearchStrategy, decode_float,
                               encode_float, proposal_rng)
from repro.search.grid import linspace

DEFAULT_BUDGET = 40
DEFAULT_BATCH = 4
#: Init-round sub-grid resolution (vdd x vth).
INIT_VDD = 4
INIT_VTH = 3
#: Grid cells with the lowest closed-form lower bounds joining the init
#: round as priors.
DEFAULT_PRIOR_CELLS = 4
#: Acquisition lattice resolution per axis.
LATTICE = 33
#: Exploration weight: bonus per unit normalized distance, in units of
#: the observed feasible energy spread.
KAPPA = 0.35
#: Early stop when the best acquisition score drops below this fraction
#: of the incumbent energy.
EARLY_STOP_REL = 1e-3


class SurrogateStrategy(SearchStrategy):
    """Quadratic surface + improvement/exploration acquisition."""

    name = "surrogate"

    def __init__(self, vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float],
                 budget: int = DEFAULT_BUDGET, seed: int = 0,
                 batch: int = DEFAULT_BATCH,
                 priors: Sequence[Tuple[float, float]] = (),
                 prior_cells: int = DEFAULT_PRIOR_CELLS):
        self._check_budget(budget, 1, self.name)
        self.vdd_range = vdd_range
        self.vth_range = vth_range
        self.budget = budget
        self.seed = seed
        self.batch = batch
        self.prior_cells = prior_cells
        self.proposal_batch = batch
        init: List[Tuple[float, float]] = []
        for vdd in linspace(*vdd_range, INIT_VDD):
            for vth in linspace(*vth_range, INIT_VTH):
                init.append((vdd, vth))
        for point in priors:
            point = (float(point[0]), float(point[1]))
            if point not in init:
                init.append(point)
        self._init_points = init[:budget]
        self._observations: List[Tuple[float, float, float, bool]] = []
        self._proposed = 0
        self._stopped = False

    # -- the seam ----------------------------------------------------------

    def propose(self, batch: int) -> List[Candidate]:
        if self._stopped or self._proposed >= self.budget:
            return []
        if self._proposed < len(self._init_points):
            points = self._init_points[self._proposed:]
            self._proposed += len(points)
            return [Candidate(vdd=vdd, vth=vth, tag="init")
                    for vdd, vth in points]
        count = min(self.batch, self.budget - self._proposed)
        points = self._acquire(count)
        if not points:
            self._stopped = True
            current_metrics().incr(search_metric(self.name, "early_stops"))
            return []
        self._proposed += len(points)
        return [Candidate(vdd=vdd, vth=vth, tag="model")
                for vdd, vth in points]

    def observe(self, candidate: Candidate, energy: float,
                feasible: bool) -> None:
        self._observations.append(
            (candidate.vdd, candidate.vth, energy, feasible))

    def done(self) -> bool:
        return self._stopped or (self._proposed >= self.budget
                                 and len(self._observations)
                                 >= self._proposed)

    def state(self) -> Dict[str, object]:
        return {
            "proposed": self._proposed,
            "stopped": self._stopped,
            "observations": [[vdd, vth, encode_float(energy), feasible]
                             for vdd, vth, energy, feasible
                             in self._observations],
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._proposed = int(state.get("proposed", 0))
        self._stopped = bool(state.get("stopped", False))
        self._observations = [
            (float(vdd), float(vth), decode_float(energy), bool(feasible))
            for vdd, vth, energy, feasible in state.get("observations", [])]

    def config(self) -> Dict[str, object]:
        return {"name": self.name, "budget": self.budget, "seed": self.seed,
                "batch": self.batch, "init": [INIT_VDD, INIT_VTH],
                "prior_cells": self.prior_cells}

    # -- the model ---------------------------------------------------------

    def _acquire(self, count: int) -> List[Tuple[float, float]]:
        """The next ``count`` points, or [] when the model has converged."""
        finite = [(vdd, vth, energy)
                  for vdd, vth, energy, feasible in self._observations
                  if feasible and math.isfinite(energy)]
        if len(finite) < 6:
            # Too little signal for the six-coefficient fit: explore
            # with the same counter-seeded stream the random strategy
            # uses (deterministic in the proposal counter).
            points = []
            for offset in range(count):
                rng = proposal_rng(self.seed, self._proposed + offset)
                points.append((rng.uniform(*self.vdd_range),
                               rng.uniform(*self.vth_range)))
            return points

        import numpy as np

        vdd_lo, vdd_hi = self.vdd_range
        vth_lo, vth_hi = self.vth_range
        xs = np.array([(vdd - vdd_lo) / (vdd_hi - vdd_lo)
                       for vdd, _, _, _ in self._observations])
        ys = np.array([(vth - vth_lo) / (vth_hi - vth_lo)
                       for _, vth, _, _ in self._observations])
        best = min(energy for _, _, energy in finite)
        worst = max(energy for _, _, energy in finite)
        spread = max(worst - best, abs(best) * 1e-3, 1e-300)
        penalty = worst + 2.0 * spread
        values = np.array([energy if feasible and math.isfinite(energy)
                           else penalty
                           for _, _, energy, feasible in self._observations])

        design = np.column_stack(
            [np.ones_like(xs), xs, ys, xs * xs, ys * ys, xs * ys])
        coeffs, *_ = np.linalg.lstsq(design, values, rcond=None)

        axis = np.linspace(0.0, 1.0, LATTICE)
        gx, gy = np.meshgrid(axis, axis, indexing="ij")
        lx, ly = gx.ravel(), gy.ravel()
        mu = (coeffs[0] + coeffs[1] * lx + coeffs[2] * ly
              + coeffs[3] * lx * lx + coeffs[4] * ly * ly
              + coeffs[5] * lx * ly)
        distance = np.sqrt(np.min(
            (lx[:, None] - xs[None, :]) ** 2
            + (ly[:, None] - ys[None, :]) ** 2, axis=1))
        score = (best - mu) + KAPPA * spread * distance
        score[distance < 1e-9] = -math.inf  # already observed

        threshold = EARLY_STOP_REL * max(abs(best), 1e-300)
        if float(np.max(score)) <= threshold:
            return []
        order = sorted(range(score.size), key=lambda i: (-score[i], i))
        points = []
        for index in order[:count]:
            points.append((vdd_lo + float(lx[index]) * (vdd_hi - vdd_lo),
                           vth_lo + float(ly[index]) * (vth_hi - vth_lo)))
        return points
