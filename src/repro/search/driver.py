"""The round loop: evaluate whatever a strategy proposes, in order.

``run_search`` is the one evaluation loop behind every seam strategy.
Each iteration asks the strategy for a round of candidates, evaluates
them — serially through the (checkpoint/controller-aware) objective, or
sharded over the supervised pool — and feeds the results back through
``observe`` in canonical proposal order. Because round *composition* is
the strategy's business (a pure function of config + history) and round
*evaluation* is the driver's, jobs-invariance holds for every strategy
the way PR 3 proved it for the grid: shard functions are pure, the
merge is canonical, and the strategy never sees the jobs count.

The parallel path is the old ``_parallel_grid_search`` generalized to
one round of arbitrary candidates: corners already in the checkpoint
are excluded from sharding and replayed through ``objective`` during
the merge; fresh corners are chunked ``chunk_ranges``-style, evaluated
by the workers, and applied to the search state in exactly the serial
order — so the best-point trajectory, the checkpoint log, and the
refinement that follows are identical to ``jobs=1``. Completed chunks
are checkpointed as they finish, so a crash mid-round resumes at chunk
granularity.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import OptimizationError
from repro.obs import trace
from repro.obs.instrument import search_metric
from repro.obs.metrics import current_metrics
from repro.robust.objective import RobustEvaluator, corner_key
from repro.runtime.supervisor import run_sharded
from repro.runtime.tasks import Task, chunk_ranges
from repro.search.base import Candidate, SearchStrategy

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.optimize.problem import OptimizationProblem
    from repro.robust.config import RobustConfig
    from repro.runtime.checkpoint import SearchCheckpoint
    from repro.runtime.controller import RunController
    from repro.runtime.supervisor import ParallelPlan
    from repro.timing.budgeting import BudgetResult


def _shard_init(problem: "OptimizationProblem", budgets: "BudgetResult",
                engine_name: str, width_method: str,
                robust: "Optional[RobustConfig]" = None):
    """Worker initializer: one evaluator per worker.

    Robust searches wrap the worker's evaluator exactly the way the
    serial path does (counter-seeded common random numbers make every
    worker draw the identical per-sample offsets), so shard results are
    a pure function of the candidates — the jobs-invariance contract.
    """
    evaluator = problem.evaluator(budgets, engine_name,
                                  width_method=width_method)
    if robust is not None:
        evaluator = RobustEvaluator(evaluator, robust)
    return evaluator


def _shard_task(evaluator, cells: Tuple[Tuple[int, float, float], ...]
                ) -> Dict[str, object]:
    """One pure shard: evaluate a contiguous canonical-order chunk.

    Returns per-candidate ``(position, energy, feasible)`` plus the
    widths of every *chunk-local* improvement (feasible candidates that
    beat all prior feasible candidates of the chunk, scanned in
    canonical order). Any candidate that improves the *global* running
    best necessarily improves its chunk-local prefix too — earlier
    candidates were merged before it, so the global best at its merge
    is at most their minimum — so the merge always finds the winning
    candidate's widths here without every feasible candidate shipping
    its (large) width map across the queue.

    Robust shards additionally return the per-candidate estimate
    records (``robust``) so the main process can merge the Monte-Carlo
    bookkeeping into the search state and checkpoint.
    """
    out_cells = []
    improvements: Dict[int, Dict[str, float]] = {}
    robust: Dict[int, Dict[str, object]] = {}
    take = getattr(evaluator, "take_stat", None)
    prefetch = getattr(evaluator, "prefetch", None)
    if prefetch is not None and len(cells) > 1:
        # Batch-capable engines evaluate the whole chunk in one kernel
        # invocation; the loop below then consumes the cache. A no-op
        # (and bit-identical) everywhere else.
        prefetch([(vdd, vth) for _, vdd, vth in cells])
    chunk_best = math.inf
    for position, vdd, vth in cells:
        evaluation = evaluator(vdd, vth)
        out_cells.append((position, evaluation.energy, evaluation.feasible))
        if take is not None:
            stat = take(vdd, vth)
            if stat is not None:
                robust[position] = stat
        if evaluation.feasible and evaluation.energy < chunk_best:
            chunk_best = evaluation.energy
            improvements[position] = dict(evaluation.widths_map())
    out: Dict[str, object] = {"cells": out_cells,
                              "improvements": improvements}
    if take is not None:
        out["robust"] = robust
    return out


def _observe_serial(strategy: SearchStrategy, candidate: Candidate,
                    state, objective) -> None:
    """Evaluate one candidate through ``objective`` and feed it back.

    Feasibility is read off the ``state.feasible_points`` delta, which
    works uniformly for fresh evaluations and checkpoint replays (the
    replay branch books feasible corners the same way).
    """
    feasible_before = state.feasible_points
    energy = objective(candidate.vdd, candidate.vth)
    strategy.observe(candidate, energy,
                     state.feasible_points > feasible_before)


def _parallel_round(strategy: SearchStrategy, candidates: List[Candidate],
                    problem: "OptimizationProblem", budgets: "BudgetResult",
                    settings, state, engine_name: str,
                    checkpoint: Optional["SearchCheckpoint"],
                    controller: Optional["RunController"],
                    plan: "ParallelPlan", objective,
                    round_index: int) -> None:
    fresh = [(position, candidate.vdd, candidate.vth)
             for position, candidate in enumerate(candidates)
             if checkpoint is None
             or checkpoint.lookup(candidate.vdd, candidate.vth) is None]

    what = f"{problem.network.name} {strategy.name} search"
    computed: Dict[int, Tuple[float, bool, Optional[Dict[str, float]]]] = {}
    robust_stats: Dict[int, Dict[str, object]] = {}
    if fresh:
        prefix = (strategy.name if round_index == 0
                  else f"{strategy.name}[r{round_index}]")
        tasks = []
        for start, stop in chunk_ranges(len(fresh), plan.jobs * 4):
            tasks.append(Task(key=f"{prefix}[{start}:{stop}]", index=start,
                              fn=_shard_task,
                              args=(tuple(fresh[start:stop]),)))

        def on_result(result) -> None:
            # Crash-safety: persist finished chunks immediately (in
            # completion order — record() is keyed, so the canonical
            # re-record during the merge below is a harmless dedup).
            if checkpoint is None or not result.ok:
                return
            for position, energy, feasible in result.value["cells"]:
                widths = result.value["improvements"].get(position)
                point = (candidates[position].vdd, candidates[position].vth)
                stat = result.value.get("robust", {}).get(position)
                if stat is not None:
                    checkpoint.note_robust_stat(corner_key(*point), stat)
                checkpoint.record(
                    point[0], point[1], energy, feasible=feasible,
                    best_energy=energy if widths is not None else math.inf,
                    best_point=point if widths is not None else None,
                    best_widths=widths)

        run = run_sharded(tasks, init_fn=_shard_init,
                          init_args=(problem, budgets, engine_name,
                                     settings.width_method,
                                     getattr(settings, "robust", None)),
                          plan=plan, controller=controller,
                          on_result=on_result, what=what)
        run.raise_if_quarantined(what)
        for result in run.results:
            for position, energy, feasible in result.value["cells"]:
                computed[position] = (energy, feasible,
                                      result.value["improvements"]
                                      .get(position))
            robust_stats.update(result.value.get("robust") or {})

    for position, candidate in enumerate(candidates):
        if position not in computed:
            _observe_serial(strategy, candidate, state, objective)
            continue
        energy, feasible, widths = computed[position]
        stat = robust_stats.get(position)
        if stat is not None:
            key = corner_key(candidate.vdd, candidate.vth)
            sink = getattr(state, "robust_stats", None)
            if sink is not None:
                sink[key] = dict(stat)
            if checkpoint is not None:
                checkpoint.note_robust_stat(key, stat)
        state.evaluations += 1
        if feasible:
            state.feasible_points += 1
            if energy < state.best_energy:
                if widths is None:  # pragma: no cover - see shard docstring
                    raise OptimizationError(
                        f"{what}: winning candidate {position} "
                        f"returned no widths")
                state.best_energy = energy
                state.best_point = (candidate.vdd, candidate.vth)
                state.best_widths = widths
        if checkpoint is not None:
            checkpoint.record(candidate.vdd, candidate.vth, energy,
                              feasible=feasible,
                              best_energy=state.best_energy,
                              best_point=state.best_point,
                              best_widths=state.best_widths)
        if controller is not None:
            controller.report(phase=strategy.name,
                              evaluations=state.evaluations,
                              best_energy=state.best_energy)
        strategy.observe(candidate, energy, feasible)


def run_search(strategy: SearchStrategy, *,
               problem: "OptimizationProblem", budgets: "BudgetResult",
               settings, state, engine_name: str, objective,
               checkpoint: Optional["SearchCheckpoint"],
               controller: Optional["RunController"],
               plan: Optional["ParallelPlan"], parallel: bool) -> int:
    """Drive ``strategy`` to completion; returns the number of rounds."""
    tracer = trace.current_tracer()
    metrics = current_metrics()
    round_index = 0
    while not strategy.done():
        candidates = strategy.propose(strategy.proposal_batch)
        if not candidates:
            break
        metrics.incr(search_metric(strategy.name, "proposals"),
                     len(candidates))
        span_name, attributes = strategy.round_span(
            round_index, plan.jobs if parallel and plan is not None else 1)
        with tracer.span(span_name, **attributes):
            if parallel and plan is not None and len(candidates) > 1:
                _parallel_round(strategy, candidates, problem, budgets,
                                settings, state, engine_name, checkpoint,
                                controller, plan, objective, round_index)
            else:
                prefetch = getattr(objective, "prefetch", None)
                if prefetch is not None and len(candidates) > 1:
                    # Submit the whole strategy round as one batched
                    # evaluation; the per-candidate loop below consumes
                    # the cache (counters, checkpointing and the best-
                    # point trajectory are untouched — the batch engine
                    # is bit-identical per row).
                    prefetch([(c.vdd, c.vth) for c in candidates])
                for candidate in candidates:
                    _observe_serial(strategy, candidate, state, objective)
        metrics.incr(search_metric(strategy.name, "observations"),
                     len(candidates))
        if checkpoint is not None:
            checkpoint.note_strategy_state(strategy.state())
        round_index += 1
    return round_index
