"""The exhaustive grid as a :class:`SearchStrategy` (the exact reference).

This is the pre-seam grid scan of ``optimize_joint`` verbatim — one
round containing every unpruned cell in canonical (vdd-outer) scan
order — so the refactor is provably behavior-preserving: the strategy
proposes the identical evaluation sequence the old loop ran, serially
and at any ``--jobs`` count (``tests/test_search_parity.py`` asserts
bit-identical results against recorded pre-refactor optima).

The PR 5 bound-based pruning is folded in as a strategy concern: the
admissible closed-form lower bound (:func:`grid_lower_bounds`) and the
feasibility-bisection probe cut (:func:`prune_cells`) run during
construction, and pruned cells are simply never proposed — exactly as
the old loop skipped them.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.obs import trace
from repro.obs.instrument import PRUNED_CELLS
from repro.obs.metrics import current_metrics
from repro.search.base import Candidate, SearchStrategy

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.optimize.problem import OptimizationProblem
    from repro.timing.budgeting import BudgetResult


def linspace(low: float, high: float, count: int) -> List[float]:
    if count == 1:
        return [0.5 * (low + high)]
    step = (high - low) / (count - 1)
    return [low + index * step for index in range(count)]


def grid_cells(vdd_range: Tuple[float, float],
               vth_range: Tuple[float, float],
               settings) -> List[Tuple[int, float, float]]:
    """The grid corners, indexed in canonical (vdd-outer) scan order.

    Serial scan, parallel sharding and the bound-based prune pre-pass all
    work off this one list, so "cell index" means the same corner
    everywhere.
    """
    cells: List[Tuple[int, float, float]] = []
    for vdd in linspace(*vdd_range, settings.grid_vdd):
        for vth in linspace(*vth_range, settings.grid_vth):
            cells.append((len(cells), vdd, vth))
    return cells


def grid_lower_bounds(problem: "OptimizationProblem",
                      cells: List[Tuple[int, float, float]]) -> List[float]:
    """Admissible per-cell lower bound on total energy (J/cycle).

    Every energy term of eqs. A1 + A2 is monotonically increasing in
    each gate width — static is ``Vdd * sum(w * I_off) / f``, and both
    dynamic terms charge loads that only grow with the widths they
    gather — so evaluating them at all-minimum widths bounds any sizing
    the solver can return, feasible or not. The width-dependent load
    sums are computed once (vectorized, via the fastpath parasitics
    kernel); each cell then costs two scalar device-model calls. Cells
    whose drive is non-positive at minimum stack loading are infeasible
    for *every* width assignment and bound to ``inf``.
    """
    import numpy as np

    from repro.engine.array import array_context_for
    from repro.fastpath.evaluate import _currents, _external_caps

    arrays = array_context_for(problem.ctx)
    tech = problem.tech
    n = arrays.n_gates
    wmin = np.full(n, tech.width_min)
    ext, _, _ = _external_caps(arrays, wmin, 0, n)
    load = wmin * arrays.self_cap + ext
    activity_load = float(np.sum(arrays.activity * load))
    sink_caps = arrays.segment_sum(
        arrays.input_fanout,
        wmin[arrays.input_fanout.indices] * arrays.input_fanout_cap)
    input_load = float(np.sum(arrays.input_activity * (
        arrays.input_self_plus_wire + arrays.input_fixed_cap + sink_caps)))
    width_sum = float(np.sum(wmin))
    stacks = [(float(fanin), 1.0 + tech.stack_derating * (fanin - 1))
              for fanin in np.unique(arrays.fanin_count)]
    frequency = problem.frequency

    bounds: List[float] = []
    for _, vdd, vth in cells:
        current, off = _currents(arrays, vdd, vth)
        if any(current / stack - fanin * off <= 0.0
               for fanin, stack in stacks):
            bounds.append(math.inf)
            continue
        bounds.append(vdd * width_sum * off / frequency
                      + 0.5 * vdd * vdd * (activity_load + input_load))
    return bounds


def prune_cells(problem: "OptimizationProblem", budgets: "BudgetResult",
                settings, engine_name: str,
                cells: List[Tuple[int, float, float]],
                vdd_range: Tuple[float, float],
                vth_range: Tuple[float, float]) -> Tuple[Set[int], int]:
    """The bound-based cut: ``(pruned cell indices, probes spent)``.

    A short feasibility bisection along the Vdd axis (at the middle Vth
    column, falling back to the fastest corner) finds a cheap feasible
    design whose energy ``U`` is an upper bound on the grid optimum;
    any cell whose *lower* bound exceeds ``U`` is strictly worse than
    the optimum and is skipped. The probes run on a private evaluator —
    they never touch the search state or the checkpoint — so the
    surviving scan's best-point trajectory is exactly the unpruned one
    minus provably-losing corners. The margin ``U * (1 + 1e-9)`` keeps
    any exact tie for the minimum unpruned — and absorbs the few-ulp
    summation-order slack between the closed-form bound and the
    engine's per-gate sums — so the argmin (including tie-breaking by
    scan order) is invariant.
    """
    bounds = grid_lower_bounds(problem, cells)
    pruned = {index for index, bound in enumerate(bounds)
              if not math.isfinite(bound)}
    if len(pruned) == len(cells):
        return pruned, 0

    vdd_values = linspace(*vdd_range, settings.grid_vdd)
    vth_values = linspace(*vth_range, settings.grid_vth)
    mid_vth = vth_values[len(vth_values) // 2]
    prober = problem.evaluator(budgets, engine_name,
                               width_method=settings.width_method)
    upper = math.inf
    probes = 0

    def probe(vdd: float, vth: float) -> bool:
        nonlocal upper, probes
        probes += 1
        evaluation = prober(vdd, vth)
        if evaluation.feasible and evaluation.energy < upper:
            upper = evaluation.energy
        return evaluation.feasible

    lo, hi = 0, len(vdd_values) - 1
    if probe(vdd_values[hi], mid_vth):
        # Walk the feasibility boundary down: the lowest feasible Vdd
        # probed has the smallest energy, hence the tightest cut.
        while probes < settings.prune_probes and lo < hi - 1:
            mid = (lo + hi) // 2
            if probe(vdd_values[mid], mid_vth):
                hi = mid
            else:
                lo = mid
    else:
        # Mid-Vth column fails even at max Vdd; the fastest corner is
        # the last hope for a feasibility witness.
        probe(vdd_values[-1], vth_values[0])

    if math.isfinite(upper):
        cut = upper * (1.0 + 1e-9)
        pruned.update(index for index, bound in enumerate(bounds)
                      if bound > cut)
    return pruned, probes


class GridStrategy(SearchStrategy):
    """One exhaustive round over the canonical scan order."""

    name = "grid"

    def __init__(self, problem: "OptimizationProblem",
                 budgets: "BudgetResult", settings, engine_name: str,
                 vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float],
                 prune_active: bool):
        self._settings = settings
        self.cells = grid_cells(vdd_range, vth_range, settings)
        self.pruned: Set[int] = set()
        self.prune_probes_used = 0
        self._prune_active = prune_active
        if prune_active:
            tracer = trace.current_tracer()
            with tracer.span("prune_bounds", cells=len(self.cells)):
                self.pruned, self.prune_probes_used = prune_cells(
                    problem, budgets, settings, engine_name, self.cells,
                    vdd_range, vth_range)
            current_metrics().incr(PRUNED_CELLS, len(self.pruned))
        self._observed = 0
        self._proposed = False
        self._live = [cell for cell in self.cells
                      if cell[0] not in self.pruned]
        self.proposal_batch = len(self._live)

    def propose(self, batch: int) -> List[Candidate]:
        if self._proposed:
            return []
        self._proposed = True
        return [Candidate(vdd=vdd, vth=vth, tag=index)
                for index, vdd, vth in self._live]

    def observe(self, candidate: Candidate, energy: float,
                feasible: bool) -> None:
        self._observed += 1

    def done(self) -> bool:
        return self._proposed and self._observed >= len(self._live)

    def state(self) -> Dict[str, object]:
        return {"proposed": self._proposed, "observed": self._observed}

    def restore(self, state: Dict[str, object]) -> None:
        self._proposed = bool(state.get("proposed", False))
        self._observed = int(state.get("observed", 0))

    def config(self) -> Dict[str, object]:
        # The grid's shape knobs live at the fingerprint top level
        # (grid_vdd/grid_vth/prune/prune_probes, unchanged since PR 1);
        # the seed and budget deliberately do not appear — they cannot
        # affect an exhaustive scan, so equal scans must keep hitting
        # the same serve cache slot across seeds.
        return {"name": self.name}

    def round_span(self, round_index: int, jobs: int
                   ) -> Tuple[str, Dict[str, object]]:
        # The historical span name and attributes, so recorded traces
        # and ``repro trace-report`` goldens read identically.
        return "grid_search", {"vdd_points": self._settings.grid_vdd,
                               "vth_points": self._settings.grid_vth,
                               "pruned": len(self.pruned),
                               "jobs": jobs}
