"""Successive halving over annealing hyperparameters (hyperband-style).

Each *arm* is a simulated-annealing random walk over the (Vdd, Vth)
plane whose hyperparameters — initial temperature ``t_max``, geometric
``cooling_rate``, and ``iters_per_temp`` (exactly the knobs fpgahart's
sweep config exposes, and the same vocabulary as
:class:`repro.optimize.annealing.AnnealingSettings`) — are drawn from
the arm's counter-seeded RNG. Arms advance in lock-step rounds (one
objective evaluation per live arm per round); at the end of each rung
the weakest ``1 - 1/eta`` fraction (ranked by best feasible energy so
far, ties by arm index) is culled and the survivors get an
``eta``-times-longer rung. Culled arms count on
``search.hyperband.early_stops`` — that is the "early termination" half
of ROADMAP item 2.

Determinism: hyperparameters, start points, step proposals, and
Metropolis accepts all come from per-arm counter-seeded RNGs, and the
RNGs are touched only inside :meth:`propose`/:meth:`observe` in
canonical order — never by the driver's sharding — so serial, sharded,
and resumed runs are identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.obs.instrument import search_metric
from repro.obs.metrics import current_metrics
from repro.search.base import (Candidate, SearchStrategy, decode_float,
                               encode_float, proposal_rng)

DEFAULT_BUDGET = 48
DEFAULT_ARMS = 6
DEFAULT_ETA = 2
#: Hyperparameter priors (the fpgahart sweep ranges, normalized).
T_MAX_RANGE = (0.2, 2.0)
COOLING_RANGE = (0.85, 0.99)
ITERS_PER_TEMP_RANGE = (1, 3)
#: Walk step, as a fraction of the axis span at full temperature.
STEP_FRACTION = 0.25


def _clip(value: float, bounds: Tuple[float, float]) -> float:
    return min(max(value, bounds[0]), bounds[1])


class _Arm:
    """One annealing walk with its own hyperparameters and RNG."""

    def __init__(self, index: int, seed: int,
                 vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float]):
        self.index = index
        self.rng = proposal_rng(seed, index)
        # Draw order is part of the arm's identity: hyperparameters
        # first, then the start point, then the walk.
        self.t_max = math.exp(self.rng.uniform(math.log(T_MAX_RANGE[0]),
                                               math.log(T_MAX_RANGE[1])))
        self.cooling = self.rng.uniform(*COOLING_RANGE)
        self.iters_per_temp = self.rng.randint(*ITERS_PER_TEMP_RANGE)
        self.point = (self.rng.uniform(*vdd_range),
                      self.rng.uniform(*vth_range))
        self.temperature = self.t_max
        self.energy = math.inf
        self.best_energy = math.inf
        self.best_point: Optional[Tuple[float, float]] = None
        self.steps = 0
        self.alive = True


def _rung_plan(n_arms: int, eta: int, budget: int
               ) -> Tuple[List[int], List[int]]:
    """(live arm count per rung, rounds per rung) fitting ``budget``."""
    sizes = []
    live = n_arms
    while True:
        sizes.append(live)
        if live <= 1:
            break
        live = math.ceil(live / eta)
    unit = sum(count * (eta ** rung) for rung, count in enumerate(sizes))
    scale = max(1, budget // unit)
    return sizes, [scale * (eta ** rung) for rung in range(len(sizes))]


class HyperbandStrategy(SearchStrategy):
    """Successive halving across a population of annealing walks."""

    name = "hyperband"

    def __init__(self, vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float],
                 budget: int = DEFAULT_BUDGET, seed: int = 0,
                 n_arms: int = DEFAULT_ARMS, eta: int = DEFAULT_ETA):
        self._check_budget(budget, n_arms, self.name)
        self.vdd_range = vdd_range
        self.vth_range = vth_range
        self.budget = budget
        self.seed = seed
        self.n_arms = n_arms
        self.eta = eta
        self.proposal_batch = n_arms
        self._arms = [_Arm(index, seed, vdd_range, vth_range)
                      for index in range(n_arms)]
        self._sizes, self._rounds = _rung_plan(n_arms, eta, budget)
        self._rung = 0
        self._rung_round = 0
        self._observed = 0

    # -- the seam ----------------------------------------------------------

    def propose(self, batch: int) -> List[Candidate]:
        self._advance_rungs()
        live = self._live()
        if self._rung >= len(self._rounds) or not live \
                or self._observed + len(live) > self.budget:
            return []
        candidates = []
        for arm in live:
            if arm.steps == 0:
                vdd, vth = arm.point
            else:
                heat = arm.temperature / arm.t_max
                vdd = _clip(arm.point[0] + arm.rng.gauss(
                    0.0, (self.vdd_range[1] - self.vdd_range[0])
                    * STEP_FRACTION * heat), self.vdd_range)
                vth = _clip(arm.point[1] + arm.rng.gauss(
                    0.0, (self.vth_range[1] - self.vth_range[0])
                    * STEP_FRACTION * heat), self.vth_range)
            candidates.append(Candidate(vdd=vdd, vth=vth, tag=arm.index))
        self._rung_round += 1
        return candidates

    def observe(self, candidate: Candidate, energy: float,
                feasible: bool) -> None:
        arm = self._arms[candidate.tag]
        arm.steps += 1
        self._observed += 1
        value = energy if feasible else math.inf
        point = (candidate.vdd, candidate.vth)
        if feasible and value < arm.best_energy:
            arm.best_energy = value
            arm.best_point = point
        if not math.isfinite(arm.energy):
            # No feasible base yet: keep walking from wherever we probed.
            arm.point, arm.energy = point, value
        elif math.isfinite(value):
            if value <= arm.energy:
                arm.point, arm.energy = point, value
            else:
                relative = (value - arm.energy) \
                    / max(abs(arm.best_energy), 1e-300)
                heat = max(arm.temperature / arm.t_max, 1e-9)
                if arm.rng.random() < math.exp(-relative / heat):
                    arm.point, arm.energy = point, value
        if arm.steps % arm.iters_per_temp == 0:
            arm.temperature *= arm.cooling

    def done(self) -> bool:
        self._advance_rungs()
        live = self._live()
        return self._rung >= len(self._rounds) or not live \
            or self._observed + len(live) > self.budget

    def state(self) -> Dict[str, object]:
        arms = []
        for arm in self._arms:
            version, internal, gauss_next = arm.rng.getstate()
            arms.append({
                "alive": arm.alive, "steps": arm.steps,
                "temperature": arm.temperature,
                "point": list(arm.point),
                "energy": encode_float(arm.energy),
                "best_energy": encode_float(arm.best_energy),
                "best_point": (list(arm.best_point)
                               if arm.best_point is not None else None),
                "rng": [version, list(internal), gauss_next],
            })
        return {"rung": self._rung, "rung_round": self._rung_round,
                "observed": self._observed, "arms": arms}

    def restore(self, state: Dict[str, object]) -> None:
        self._rung = int(state.get("rung", 0))
        self._rung_round = int(state.get("rung_round", 0))
        self._observed = int(state.get("observed", 0))
        for arm, snapshot in zip(self._arms, state.get("arms", [])):
            arm.alive = bool(snapshot["alive"])
            arm.steps = int(snapshot["steps"])
            arm.temperature = float(snapshot["temperature"])
            arm.point = (float(snapshot["point"][0]),
                         float(snapshot["point"][1]))
            arm.energy = decode_float(snapshot["energy"])
            arm.best_energy = decode_float(snapshot["best_energy"])
            best_point = snapshot.get("best_point")
            arm.best_point = (None if best_point is None else
                              (float(best_point[0]), float(best_point[1])))
            version, internal, gauss_next = snapshot["rng"]
            arm.rng.setstate((version, tuple(internal), gauss_next))

    def config(self) -> Dict[str, object]:
        return {"name": self.name, "budget": self.budget, "seed": self.seed,
                "n_arms": self.n_arms, "eta": self.eta}

    # -- successive halving ------------------------------------------------

    def _live(self) -> List[_Arm]:
        return [arm for arm in self._arms if arm.alive]

    def _advance_rungs(self) -> None:
        while self._rung < len(self._rounds) \
                and self._rung_round >= self._rounds[self._rung]:
            ranked = sorted(self._live(),
                            key=lambda arm: (arm.best_energy, arm.index))
            self._rung += 1
            self._rung_round = 0
            if self._rung >= len(self._rounds):
                break
            keep = self._sizes[self._rung]
            if len(ranked) > keep:
                for arm in ranked[keep:]:
                    arm.alive = False
                current_metrics().incr(
                    search_metric(self.name, "early_stops"),
                    len(ranked) - keep)
