"""Pluggable (Vdd, Vth) search strategies (ROADMAP item 2).

See :mod:`repro.search.base` for the seam contract. This package
exposes the factory (:func:`make_strategy`) and the resolved-config
function (:func:`search_config`) that :mod:`repro.optimize.heuristic`
threads into checkpoints, the serve cache key, and result details.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.errors import OptimizationError
from repro.search.base import (Candidate, SearchStrategy, STRATEGY_CHOICES,
                               proposal_rng)
from repro.search.driver import run_search
from repro.search.grid import GridStrategy, grid_cells, grid_lower_bounds
from repro.search.hyperband import HyperbandStrategy
from repro.search.randomized import RandomStrategy
from repro.search.surrogate import SurrogateStrategy
from repro.search import hyperband as _hyperband
from repro.search import randomized as _randomized
from repro.search import surrogate as _surrogate

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.optimize.problem import OptimizationProblem
    from repro.timing.budgeting import BudgetResult

__all__ = [
    "Candidate", "SearchStrategy", "STRATEGY_CHOICES", "proposal_rng",
    "run_search", "GridStrategy", "RandomStrategy", "SurrogateStrategy",
    "HyperbandStrategy", "make_strategy", "search_config",
]

#: Default evaluation budgets when ``search_budget`` is unset.
DEFAULT_BUDGETS = {
    "random": _randomized.DEFAULT_BUDGET,
    "surrogate": _surrogate.DEFAULT_BUDGET,
    "hyperband": _hyperband.DEFAULT_BUDGET,
}


def search_config(settings) -> Dict[str, object]:
    """The *resolved* strategy configuration for ``settings``.

    This dict is the strategy's identity everywhere one is needed: it
    is embedded in the checkpoint fingerprint (a resumed run can never
    silently switch strategy, budget, or seed), in the serve
    result-cache key (a cached grid result can never satisfy a random
    request and vice versa), and in result ``details``. It therefore
    contains every knob that shapes the proposal sequence — and, for
    the exhaustive strategies, deliberately *omits* seed and budget
    (they cannot affect a full scan, so equal scans keep hitting the
    same cache slot across seeds). All values are JSON-native so the
    fingerprint survives a round-trip through the checkpoint file.
    """
    name = settings.strategy
    if name in ("grid", "paper"):
        return {"name": name}
    budget = settings.search_budget or DEFAULT_BUDGETS[name]
    config: Dict[str, object] = {"name": name, "budget": budget,
                                 "seed": settings.seed}
    if name == "random":
        config["batch"] = min(_randomized.DEFAULT_BATCH, budget)
    elif name == "surrogate":
        config.update(batch=_surrogate.DEFAULT_BATCH,
                      init=[_surrogate.INIT_VDD, _surrogate.INIT_VTH],
                      prior_cells=_surrogate.DEFAULT_PRIOR_CELLS)
    elif name == "hyperband":
        config.update(n_arms=_hyperband.DEFAULT_ARMS,
                      eta=_hyperband.DEFAULT_ETA)
    else:  # pragma: no cover - settings validation rejects this earlier
        raise OptimizationError(f"unknown search strategy {name!r}")
    return config


def surrogate_priors(problem: "OptimizationProblem",
                     vdd_range: Tuple[float, float],
                     vth_range: Tuple[float, float],
                     settings, count: int) -> List[Tuple[float, float]]:
    """The ``count`` virtual-grid cells with the lowest closed-form bound.

    Free model knowledge for the surrogate's init round: the PR 5
    admissible lower bounds cost no objective evaluations and point at
    the basin the true optimum sits in. Deterministic (bound, index)
    ranking on the same canonical cell order the grid uses.
    """
    cells = grid_cells(vdd_range, vth_range, settings)
    bounds = grid_lower_bounds(problem, cells)
    ranked = sorted((index for index in range(len(cells))
                     if math.isfinite(bounds[index])),
                    key=lambda index: (bounds[index], index))
    return [(cells[index][1], cells[index][2]) for index in ranked[:count]]


def make_strategy(problem: "OptimizationProblem", budgets: "BudgetResult",
                  settings, engine_name: str,
                  vdd_range: Tuple[float, float],
                  vth_range: Tuple[float, float],
                  prune_active: bool) -> SearchStrategy:
    """Build the strategy ``settings`` names, fully resolved."""
    config = search_config(settings)
    name = config["name"]
    if name == "grid":
        return GridStrategy(problem, budgets, settings, engine_name,
                            vdd_range, vth_range, prune_active)
    if name == "random":
        return RandomStrategy(vdd_range, vth_range, budget=config["budget"],
                              seed=config["seed"], batch=config["batch"])
    if name == "surrogate":
        priors = surrogate_priors(problem, vdd_range, vth_range, settings,
                                  config["prior_cells"])
        return SurrogateStrategy(vdd_range, vth_range,
                                 budget=config["budget"],
                                 seed=config["seed"], batch=config["batch"],
                                 priors=priors,
                                 prior_cells=config["prior_cells"])
    if name == "hyperband":
        return HyperbandStrategy(vdd_range, vth_range,
                                 budget=config["budget"],
                                 seed=config["seed"],
                                 n_arms=config["n_arms"], eta=config["eta"])
    raise OptimizationError(f"unknown search strategy {name!r}")
