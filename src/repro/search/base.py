"""The search-strategy seam over the (Vdd, Vth) plane.

Procedure 2's outer loop — *which* (Vdd, Vth) corners get a Procedure 1
budgeting + width sizing — is pluggable behind :class:`SearchStrategy`.
The exhaustive grid (the paper's experimental setup, with the PR 5
bound-based pruning folded in) is the exact reference implementation of
the seam; the adaptive strategies (random, surrogate, hyperband) trade
the quadratic scan for a budgeted search that the parity harness
(``tests/test_search_parity.py``, ``ci/check_search_parity.py``) holds
to the grid argmin's energy at a fraction of the evaluations.

The contract every strategy implements:

* :meth:`~SearchStrategy.propose` returns the next **round** of
  candidates. Round composition is a pure function of the strategy's
  config and the observation history — never of the jobs count, wall
  clock, or worker scheduling — which is what makes every strategy
  jobs-invariant: the driver evaluates a round serially or sharded over
  the supervised pool and feeds results back in canonical proposal
  order either way.
* :meth:`~SearchStrategy.observe` feeds one evaluated candidate back,
  in proposal order. Strategies adapt *between* rounds only.
* :meth:`~SearchStrategy.done` ends the search (budget exhausted, or an
  early stop — counted on ``search.<name>.early_stops``).
* :meth:`~SearchStrategy.state` / :meth:`~SearchStrategy.restore`
  round-trip the strategy's mutable state through JSON for
  checkpointing. Resume does not need :meth:`restore` for correctness —
  strategies are deterministic, so replaying the recorded evaluations
  through :meth:`observe` rebuilds the identical state — but the
  serialized state is persisted with the checkpoint so an interrupted
  search is inspectable and verifiable.
* :meth:`~SearchStrategy.config` is the strategy's *resolved*
  configuration (name, budget, seed, shape knobs). It is recorded in
  the checkpoint fingerprint, the serve result-cache key, and result
  ``details`` — a cached grid result can never satisfy a random-search
  request, and a resumed run can never silently switch strategy or
  seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OptimizationError

#: Strategies served by the seam (the paper's nested bisection stays a
#: dedicated code path in ``optimize_joint`` — it steers per evaluation
#: and has no round structure to shard).
STRATEGY_CHOICES = ("grid", "random", "surrogate", "hyperband")


@dataclass(frozen=True)
class Candidate:
    """One proposed (Vdd, Vth) corner.

    ``tag`` is strategy-private routing (e.g. the hyperband arm an
    observation belongs to); the driver carries it back untouched.
    """

    vdd: float
    vth: float
    tag: object = None


class SearchStrategy:
    """Base class of the pluggable (Vdd, Vth) samplers (see module doc)."""

    #: Strategy name — CLI / fingerprint / metrics vocabulary.
    name: str = "base"

    #: Natural round size. The driver passes this to :meth:`propose`;
    #: it is config-derived (never jobs-derived) so round composition is
    #: identical at any ``--jobs`` count.
    proposal_batch: int = 1

    def propose(self, batch: int) -> List[Candidate]:
        """Up to ``batch`` candidates for the next round.

        Exhaustive strategies may return more (the grid emits its whole
        scan as one round so sharding sees every cell at once). An
        empty list ends the search even if :meth:`done` is False.
        """
        raise NotImplementedError

    def observe(self, candidate: Candidate, energy: float,
                feasible: bool) -> None:
        """Feed back one evaluated candidate (canonical proposal order)."""
        raise NotImplementedError

    def done(self) -> bool:
        """True once the strategy has no further rounds to propose."""
        raise NotImplementedError

    def state(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the mutable search state."""
        raise NotImplementedError

    def restore(self, state: Dict[str, object]) -> None:
        """Rebuild :meth:`state`'s snapshot (inverse of ``state()``)."""
        raise NotImplementedError

    def config(self) -> Dict[str, object]:
        """Resolved, immutable configuration (fingerprint contribution)."""
        raise NotImplementedError

    def round_span(self, round_index: int, jobs: int
                   ) -> Tuple[str, Dict[str, object]]:
        """(span name, attributes) for this round's trace span."""
        return "search_round", {"strategy": self.name,
                                "round": round_index, "jobs": jobs}

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _check_budget(budget: int, minimum: int, name: str) -> int:
        if budget < minimum:
            raise OptimizationError(
                f"{name}: search_budget must be >= {minimum}, got {budget}")
        return budget


def proposal_rng(seed: int, index: int) -> random.Random:
    """The RNG of proposal ``index`` under strategy seed ``seed``.

    Counter-seeded exactly like the Monte-Carlo sampler's per-sample
    RNG (PR 4): the stream of proposal ``index`` depends only on
    ``(seed, index)``, never on how many proposals preceded it in this
    process — so sharded and serial runs, and runs resumed mid-round,
    draw identical points.
    """
    return random.Random((seed << 32) ^ index)


def best_feasible(observations: List[Tuple[float, float, float, bool]]
                  ) -> Tuple[Optional[Tuple[float, float]], float]:
    """(point, energy) of the best feasible observation, or (None, inf)."""
    point, energy = None, math.inf
    for vdd, vth, value, feasible in observations:
        if feasible and value < energy:
            point, energy = (vdd, vth), value
    return point, energy


def encode_float(value: float) -> float | str:
    """JSON-portable float for :meth:`SearchStrategy.state` snapshots.

    Same convention as the checkpoint file (infeasible corners carry
    ``inf`` energies, which bare JSON cannot hold).
    """
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


def decode_float(value) -> float:
    if value == "nan":
        return math.nan
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)
